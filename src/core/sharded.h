// Sharded scale-out coordinator: partitions the cluster into K disjoint
// machine shards (cluster::ShardPlan), gives each shard its own
// AladdinScheduler + mirrored ClusterState (cluster::ShardView), and solves
// the shards concurrently on a thread pool.
//
// Per Schedule() call:
//   1. Sync     — replay each shard's scoped dirty log to refresh its
//                 mirror (full re-attach only for shards whose scope
//                 overflowed, not for the whole cluster).
//   2. Route    — assign each arriving application to a shard with a
//                 deterministic pluggable policy (hash / least-utilized /
//                 constraint-driven). Before the parallel solve every shard
//                 reports, for each anti-affinity-constrained application,
//                 how many of its machines the blacklist (Eq. 7–8) leaves
//                 eligible — the blacklist-exchange round — and a shard
//                 with zero eligible machines is vetoed regardless of
//                 policy, so cross-shard inter-app anti-affinity steers
//                 routing instead of producing dead-on-arrival solves.
//   3. Solve    — shards with work run concurrently; each solver's journal
//                 emissions are parked in a per-shard capture buffer
//                 (obs::ScopedDecisionCapture), never touching the global
//                 sequence from a worker thread.
//   4. Merge    — in fixed shard order: replay captured journal records
//                 (machine ids translated local→global), apply each shard's
//                 placement diff to the global state, fold migration /
//                 preemption counters and search-effort counters. Fixed
//                 order makes the merged stream and counters bit-identical
//                 across thread counts; K=1 reproduces the unsharded
//                 scheduler bit-for-bit (same solver, same arrival order,
//                 verbatim topology copy).
//   5. Spill    — containers a shard could not admit are re-routed to the
//                 best untried shard and solved again (the existing
//                 migration/repair pass runs inside each shard's solver),
//                 bounding the packing cost of a bad routing choice.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/shard.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"

namespace aladdin::core {

// Application → shard routing policies. All are deterministic functions of
// (workload, cluster state, arrival order) — never of addresses, thread
// interleavings or wall time — so a restarted process routes identically.
enum class ShardRouting : std::uint8_t {  // analyze:closed_enum
  kHash = 0,        // FNV-1a of the application name, mod K
  kLeastUtilized,   // shard with the most free CPU at routing time
  kConstraintDriven,  // most eligible machines under the app's blacklist;
                      // falls back to least-utilized for unconstrained apps
  kCount
};

[[nodiscard]] const char* ShardRoutingName(ShardRouting routing);
// Inverse of ShardRoutingName; returns kCount for unknown names.
[[nodiscard]] ShardRouting ShardRoutingFromName(const std::string& name);

struct ShardedOptions {
  // Number of shards (clamped to the machine count; <= 1 means one shard,
  // which is bit-identical to the unsharded AladdinScheduler).
  int shards = 1;
  ShardRouting routing = ShardRouting::kLeastUtilized;
  // Spill rounds after the primary solve: containers a shard failed to
  // admit are re-routed to untried shards at most this many times. 0
  // disables spilling (a bad routing choice then surfaces as unplaced).
  int rebalance_rounds = 2;
  // Worker threads for the shard solves. 0 = hardware concurrency,
  // 1 = serial. Results are bit-identical for any value.
  int threads = 0;
  // Per-shard solver configuration. `aladdin.threads` is forced to 1 —
  // shard-level parallelism replaces the intra-solve search pool (nesting
  // pools would oversubscribe without improving determinism).
  AladdinOptions aladdin;
};

// Per-shard activity of the most recent Schedule() call (bench/tooling).
struct ShardTickStats {
  int shard = 0;
  std::size_t machines = 0;
  std::size_t routed = 0;    // containers assigned (incl. spill retries)
  std::size_t spilled = 0;   // routed arrivals from spill rounds (>= 1)
  std::size_t placed = 0;    // containers admitted by this shard's solver
  std::size_t unplaced = 0;  // terminal give-ups attributed to this shard
  // End-of-tick cpu occupancy of the shard's machines, exact cpu-millis —
  // the watchdog's imbalance detector divides these into permille.
  std::int64_t free_cpu_millis = 0;
  std::int64_t capacity_cpu_millis = 0;
  double solve_seconds = 0.0;
};

class ShardedScheduler : public sim::Scheduler {
 public:
  explicit ShardedScheduler(ShardedOptions options = {});
  ~ShardedScheduler() override;

  [[nodiscard]] std::string name() const override;

  // Incremental like AladdinScheduler: the shard plan, mirrors and solver
  // warm-starts survive across calls against the same ClusterState object
  // (keyed on instance_id); a different state re-attaches from scratch.
  sim::ScheduleOutcome Schedule(const sim::ScheduleRequest& request,
                                cluster::ClusterState& state) override;

  // Batch counterpart of AladdinScheduler::ScheduleBatch: the coordinator
  // already keeps shard mirrors warm across calls (SyncShards replays only
  // the scoped dirty deltas), so a micro-batch is the per-request loop plus
  // the same kBatchScheduled journal markers the unsharded path emits —
  // outcome streams stay bit-identical between shard counts.
  std::vector<sim::ScheduleOutcome> ScheduleBatch(
      std::span<const sim::ScheduleRequest> requests,
      cluster::ClusterState& state);

  [[nodiscard]] const ShardedOptions& options() const { return options_; }
  // Valid after the first Schedule() call.
  [[nodiscard]] const cluster::ShardPlan* plan() const { return plan_.get(); }
  [[nodiscard]] const std::vector<ShardTickStats>& last_shard_stats() const {
    return last_shard_stats_;
  }

 private:
  // Everything one shard owns: its mirrored state, its solver (with the
  // solver's incremental network + flow workspace + arena), its journal
  // capture buffer and its merge bookkeeping.
  struct ShardRuntime {
    std::unique_ptr<cluster::ShardView> view;
    std::unique_ptr<AladdinScheduler> solver;
    std::vector<cluster::ContainerId> round_arrivals;
    std::vector<obs::Decision> journal;
    sim::ScheduleOutcome outcome;
    std::uint64_t dirty_cursor = 0;
    std::int64_t migrations_mark = 0;
    std::int64_t preemptions_mark = 0;
    std::int64_t free_cpu = 0;  // routing estimate, refreshed per tick
    ShardTickStats stats;
    // Interned per-shard metric handles (K > 1 only; null otherwise so the
    // K = 1 run exports exactly the unsharded counter set).
    obs::Counter* routed_counter = nullptr;
    obs::Counter* placed_counter = nullptr;
    obs::Phase* solve_phase = nullptr;
  };

  // A container awaiting (re-)routing, with the diagnosis and shard of its
  // latest failed attempt.
  struct Pending {
    cluster::ContainerId container;
    obs::Cause cause = obs::Cause::kNone;
    int last_shard = -1;
  };

  void AttachShards(cluster::ClusterState& state);
  void SyncShards(cluster::ClusterState& state);
  // Routes `pending` into the shards' round_arrivals. Round 0 applies the
  // configured policy with home-shard stickiness; later rounds pick the
  // best untried shard per application. Containers with no shard left to
  // try are moved to `given_up`.
  void RouteRound(const cluster::ClusterState& state,
                  const std::vector<Pending>& pending, int round,
                  std::vector<Pending>& given_up);
  // Solves every shard with work (parallel when configured), then merges
  // journal + placement diff + counters into `state` in fixed shard order
  // and refills `pending` with this round's unplaced containers.
  void SolveAndMerge(const sim::ScheduleRequest& request,
                     cluster::ClusterState& state,
                     sim::ScheduleOutcome& outcome,
                     std::vector<Pending>& pending);
  [[nodiscard]] ThreadPool* SolvePool();
  // Blacklist-exchange probe: machines of shard `s` on which `container`'s
  // application is not blacklisted (Eq. 7–8) right now.
  [[nodiscard]] std::size_t EligibleMachines(int s,
                                             cluster::ContainerId container)
      const;
  // Existence-only variant for the veto: stops at the first eligible
  // machine, so the common no-veto case is O(1) instead of O(machines).
  [[nodiscard]] bool HasEligibleMachine(int s,
                                        cluster::ContainerId container) const;

  ShardedOptions options_;
  std::unique_ptr<cluster::ShardPlan> plan_;
  std::vector<ShardRuntime> shards_;
  std::uint64_t attached_state_id_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  bool pool_created_ = false;

  // Routing state. home_shard_ persists across ticks (an application's
  // later waves land with its earlier containers); app_slot_ and the
  // round-app scratch are per-call and reset after use.
  std::vector<std::int32_t> home_shard_;  // per application, -1 = unrouted
  std::vector<std::int32_t> app_slot_;    // per application, -1 = not seen
  struct RoundApp {
    cluster::ApplicationId app;
    int target = -1;
    std::size_t count = 0;       // containers in this round
    cluster::ContainerId probe;  // representative for blacklist probes
    bool constrained = false;
  };
  std::vector<RoundApp> round_apps_;
  // Shards an application already tried this tick, as a bitmask consulted
  // by spill rounds. Shards >= 64 stay re-tryable (mild spill bias at
  // K > 64, still deterministic). Cleared per tick for touched apps.
  std::vector<std::uint64_t> app_tried_;
  std::vector<cluster::ApplicationId> tick_touched_;
  std::vector<Pending> pending_;
  std::vector<Pending> next_pending_;
  std::vector<Pending> given_up_;
  std::vector<cluster::ContainerId> merge_scratch_;  // per-merge diff list
  std::vector<ShardTickStats> last_shard_stats_;
};

}  // namespace aladdin::core

// The literal Fig. 4 flow network and its max-flow relaxation.
//
// Aladdin's Algorithm 1 never materialises the full network — it searches
// it path by path under the nonlinear capacity function. This module builds
// the network explicitly (source → T_i → A_j → G_k → R_x → N_y → sink, with
// flow measured in CPU millicores) and solves the *linear relaxation* with
// the scalar max-flow solver: anti-affinity blacklists and container
// impartibility (§IV.D: "a container with 4 CPUs cannot be broken down")
// are ignored, so the resulting flow value is a provable upper bound on the
// CPU any scheduler can place.
//
// Uses:
//   * validation — the audited placed-CPU of every scheduler must be <= the
//     bound (asserted by tests);
//   * diagnostics — the gap between the bound and Aladdin's placement
//     isolates how much capacity the *constraints* (not the algorithm)
//     make unusable.
#pragma once

#include <cstdint>

#include "cluster/state.h"
#include "flow/graph.h"
#include "flow/max_flow.h"
#include "flow/workspace.h"
#include "trace/workload.h"

namespace aladdin::core {

struct RelaxationNetwork {
  flow::Graph graph;
  VertexId source;
  VertexId sink;
  // Arc from the source to each container's T_i vertex (capacity = its CPU
  // request); arcs(flow) afterwards tell how much of each container the
  // relaxation placed (fractionally).
  std::vector<ArcId> container_arcs;
  // Arc from each machine's N_y vertex to the sink (capacity = free CPU).
  std::vector<ArcId> machine_arcs;
  // First A_j vertex; application j's vertex is first_app + j (they are
  // contiguous). Lets incremental growth wire new T_i vertices in.
  VertexId first_app;
  std::size_t edge_count = 0;
};

// Builds the aggregated network against the *current* free capacities of
// `state` (so bound pods are excluded from both sides).
RelaxationNetwork BuildRelaxationNetwork(const trace::Workload& workload,
                                         const cluster::ClusterState& state);

struct RelaxationBound {
  // Max-flow value: CPU millicores placeable ignoring anti-affinity and
  // impartibility.
  std::int64_t placeable_cpu_millis = 0;
  // Total CPU demand of the unplaced containers considered.
  std::int64_t demand_cpu_millis = 0;
  std::size_t vertices = 0;
  std::size_t edges = 0;
};

// Convenience: build + solve (Dinic).
RelaxationBound SolveRelaxation(const trace::Workload& workload,
                                const cluster::ClusterState& state);

// Incremental variant: keeps the relaxation network (and its flow) alive
// across solves against the same workload/state pair. Successive solves
// update only the arcs whose capacity changed — machine free-CPU arcs in
// place, container arcs zeroed when placed / re-opened when evicted, new
// containers appended — cancelling excess flow with flow::CancelArcFlow and
// warm-starting Dinic from the surviving flow. The bound returned is
// always identical to a fresh SolveRelaxation (max-flow value is unique);
// only the work to get there shrinks. Falls back to a full rebuild when
// the workload's application set or the state object itself changes.
class IncrementalRelaxation {
 public:
  RelaxationBound Solve(const trace::Workload& workload,
                        const cluster::ClusterState& state);

  // True when the last Solve() reused the cached network.
  [[nodiscard]] bool reused_last() const { return reused_last_; }

 private:
  void Refresh(const trace::Workload& workload,
               const cluster::ClusterState& state);

  RelaxationNetwork net_;
  // Long-lived solver scratch: with the network reused across ticks, a
  // steady-state Solve() (RefreshCapacities + warm Dinic) allocates
  // nothing. `updates_` stages each tick's capacity retargets for the one
  // flow::RefreshCapacities micro-batch.
  flow::Workspace ws_;
  std::vector<flow::CapacityUpdate> updates_;
  bool built_ = false;
  bool reused_last_ = false;
  std::uint64_t state_instance_ = 0;
  std::size_t application_count_ = 0;
  // A_j vertex of application j is app_vertex_base_ + j (fixed at build).
  std::int32_t app_vertex_base_ = 0;
};

// CPU millicores actually placed in `state` (for comparing against bounds).
std::int64_t PlacedCpuMillis(const cluster::ClusterState& state);

}  // namespace aladdin::core

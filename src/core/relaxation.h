// The literal Fig. 4 flow network and its max-flow relaxation.
//
// Aladdin's Algorithm 1 never materialises the full network — it searches
// it path by path under the nonlinear capacity function. This module builds
// the network explicitly (source → T_i → A_j → G_k → R_x → N_y → sink, with
// flow measured in CPU millicores) and solves the *linear relaxation* with
// the scalar max-flow solver: anti-affinity blacklists and container
// impartibility (§IV.D: "a container with 4 CPUs cannot be broken down")
// are ignored, so the resulting flow value is a provable upper bound on the
// CPU any scheduler can place.
//
// Uses:
//   * validation — the audited placed-CPU of every scheduler must be <= the
//     bound (asserted by tests);
//   * diagnostics — the gap between the bound and Aladdin's placement
//     isolates how much capacity the *constraints* (not the algorithm)
//     make unusable.
#pragma once

#include <cstdint>

#include "cluster/state.h"
#include "flow/graph.h"
#include "trace/workload.h"

namespace aladdin::core {

struct RelaxationNetwork {
  flow::Graph graph;
  VertexId source;
  VertexId sink;
  // Arc from the source to each container's T_i vertex (capacity = its CPU
  // request); arcs(flow) afterwards tell how much of each container the
  // relaxation placed (fractionally).
  std::vector<ArcId> container_arcs;
  // Arc from each machine's N_y vertex to the sink (capacity = free CPU).
  std::vector<ArcId> machine_arcs;
  std::size_t edge_count = 0;
};

// Builds the aggregated network against the *current* free capacities of
// `state` (so bound pods are excluded from both sides).
RelaxationNetwork BuildRelaxationNetwork(const trace::Workload& workload,
                                         const cluster::ClusterState& state);

struct RelaxationBound {
  // Max-flow value: CPU millicores placeable ignoring anti-affinity and
  // impartibility.
  std::int64_t placeable_cpu_millis = 0;
  // Total CPU demand of the unplaced containers considered.
  std::int64_t demand_cpu_millis = 0;
  std::size_t vertices = 0;
  std::size_t edges = 0;
};

// Convenience: build + solve (Dinic).
RelaxationBound SolveRelaxation(const trace::Workload& workload,
                                const cluster::ClusterState& state);

// CPU millicores actually placed in `state` (for comparing against bounds).
std::int64_t PlacedCpuMillis(const cluster::ClusterState& state);

}  // namespace aladdin::core

// The multidimensional, nonlinear capacity function (Eq. 6–8).
//
// In Aladdin's flow network all interior edges are infinite; the binding
// capacities sit on c(s, T_i) — the container's request tuple — and
// c(N_j, t) — the machine's remaining provisioning tuple. A path carries a
// new flow iff
//   (1) c(s,T_i)(x1..xn) <= c(N_j,t)(x1..xn)   componentwise   (Eq. 6), and
//   (2) T_i ∉ blacklist(N_j)                                    (Eq. 7–8),
// where the blacklist is the set-valued, *nonlinear* part of the capacity:
// it depends on which containers are already deployed on N_j, not on a
// linear combination of flow values.
#pragma once

#include <cstdint>
#include <span>

#include "cluster/state.h"

namespace aladdin::core {

// Outcome of evaluating the capacity function for a (container, machine)
// pair; split so the search can attribute failures (IL keys off resource
// failures, the repair engine off blacklist failures).
struct CapacityCheck {
  bool fits = false;         // Eq. 6
  bool blacklisted = false;  // Eq. 7–8
  [[nodiscard]] bool Admits() const { return fits && !blacklisted; }
};

class CapacityFunction {
 public:
  // Evaluates both parts of the capacity function against live state.
  static CapacityCheck Evaluate(const cluster::ClusterState& state,
                                cluster::ContainerId container,
                                cluster::MachineId machine) {
    CapacityCheck check;
    check.fits = state.Fits(container, machine);
    // Short-circuit: the blacklist probe walks the machine's deployed app
    // set, so skip it when the resource tuple already rejects the path.
    check.blacklisted = check.fits && state.Blacklisted(container, machine);
    return check;
  }

  // Eq. 8 in one bool.
  static bool Admits(const cluster::ClusterState& state,
                     cluster::ContainerId container,
                     cluster::MachineId machine) {
    return Evaluate(state, container, machine).Admits();
  }

  // Batched Eq. 6 over a flat machine array: one fit bit per machine for a
  // single request tuple. The loop body is a dependency-free componentwise
  // compare against consecutive candidates — the structure-of-arrays form
  // the group waterfall feeds its frozen snapshot chunks through. Each bit
  // equals CapacityCheck::fits for that (container, machine) pair.
  static void BatchFits(const cluster::ClusterState& state,
                        cluster::ContainerId container,
                        std::span<const std::int32_t> machines,
                        std::span<std::uint8_t> out) {
    for (std::size_t i = 0; i < machines.size(); ++i) {
      out[i] =
          state.Fits(container, cluster::MachineId(machines[i])) ? 1 : 0;
    }
  }
};

}  // namespace aladdin::core

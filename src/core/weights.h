// Priority weights for weighted flows (Eq. 3–5).
//
// Aladdin makes preemption priority-safe by scaling each container's flow
// contribution: the weighted flow w_k·f(i,j) of any higher-priority
// container must exceed that of any lower-priority one, so augmenting the
// network can never profit from displacing a high-priority container with a
// low-priority one (§III.B). Eq. 3 buckets containers by priority class;
// Eq. 4 anchors w_1 = 1; Eq. 5 requires
//     w_{k+1} >= minimize(x(k+1)) / maximize(x(k))
// ... such that w_{k+1}·min(x_{k+1}) > w_k·max(x_k), where x(k) is the set
// of flow magnitudes (resource requests) of class k.
//
// The evaluation's Aladdin(16/32/64/128) knob picks geometric weights with
// those bases; all satisfy Eq. 5 for the trace (max request = 16 CPUs) and
// therefore produce identical schedules — which the placement-quality bench
// demonstrates.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/workload.h"

namespace aladdin::core {

struct PriorityWeights {
  // weight[k] is w_{k+1} in paper numbering (index 0 = lowest class, w = 1).
  std::vector<std::int64_t> weight;

  [[nodiscard]] std::int64_t WeightOf(cluster::Priority p) const {
    if (p < 0) p = 0;
    const auto idx = static_cast<std::size_t>(p);
    return idx < weight.size() ? weight[idx] : weight.back();
  }

  // The quantity Eq. 9 maximises per unit: weighted flow of a container.
  [[nodiscard]] std::int64_t WeightedFlow(
      const cluster::Container& c) const {
    // Flow magnitude = CPU millicores (the evaluation's flow dimension).
    return WeightOf(c.priority) * c.request.cpu_millis();
  }
};

// Smallest weights satisfying Eq. 4–5 for this workload: per class k,
// w_{k+1} = floor(w_k · max(x_k) / min(x_{k+1})) + 1. Classes absent from
// the workload inherit the previous weight.
PriorityWeights ComputeMinimalWeights(const trace::Workload& workload);

// Geometric weights w_k = base^k — the paper's evaluation settings
// (base ∈ {16, 32, 64, 128}).
PriorityWeights MakeGeometricWeights(int classes, std::int64_t base);

// Checks Eq. 5: for every pair of adjacent classes present in the workload,
// the weighted flow of any class-(k+1) container strictly exceeds that of
// any class-k container.
bool SatisfiesEq5(const PriorityWeights& weights,
                  const trace::Workload& workload);

}  // namespace aladdin::core

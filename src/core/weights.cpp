#include "core/weights.h"

#include <algorithm>
#include <limits>

namespace aladdin::core {

namespace {

struct ClassRange {
  std::int64_t min_flow = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_flow = 0;
  bool present = false;
};

// Eq. 3: bucket flow magnitudes by priority class.
std::vector<ClassRange> ClassRanges(const trace::Workload& workload) {
  std::vector<ClassRange> ranges(cluster::kPriorityClasses);
  for (const auto& c : workload.containers()) {
    const auto k = static_cast<std::size_t>(
        std::clamp<cluster::Priority>(c.priority, 0,
                                      cluster::kPriorityClasses - 1));
    auto& r = ranges[k];
    r.present = true;
    const std::int64_t flow = c.request.cpu_millis();
    r.min_flow = std::min(r.min_flow, flow);
    r.max_flow = std::max(r.max_flow, flow);
  }
  return ranges;
}

}  // namespace

PriorityWeights ComputeMinimalWeights(const trace::Workload& workload) {
  const auto ranges = ClassRanges(workload);
  PriorityWeights weights;
  weights.weight.assign(ranges.size(), 1);  // Eq. 4: w_1 = 1
  std::int64_t prev_weight = 1;
  std::int64_t prev_max = 0;
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    if (k == 0) {
      prev_max = ranges[k].present ? ranges[k].max_flow : 0;
      continue;
    }
    std::int64_t w = prev_weight;
    if (ranges[k].present && prev_max > 0) {
      // Smallest integer with w·min(x_k) > prev_weight·max(x_{k-1}).
      w = (prev_weight * prev_max) / ranges[k].min_flow + 1;
      w = std::max(w, prev_weight);
    }
    weights.weight[k] = w;
    prev_weight = w;
    if (ranges[k].present) prev_max = ranges[k].max_flow;
  }
  return weights;
}

PriorityWeights MakeGeometricWeights(int classes, std::int64_t base) {
  PriorityWeights weights;
  weights.weight.reserve(static_cast<std::size_t>(classes));
  std::int64_t w = 1;
  for (int k = 0; k < classes; ++k) {
    weights.weight.push_back(w);
    w *= base;
  }
  return weights;
}

bool SatisfiesEq5(const PriorityWeights& weights,
                  const trace::Workload& workload) {
  const auto ranges = ClassRanges(workload);
  // Compare each present class against the next present class above it.
  std::size_t prev = ranges.size();
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    if (!ranges[k].present) continue;
    if (prev != ranges.size()) {
      const std::int64_t low = weights.WeightOf(
                                   static_cast<cluster::Priority>(prev)) *
                               ranges[prev].max_flow;
      const std::int64_t high = weights.WeightOf(
                                    static_cast<cluster::Priority>(k)) *
                                ranges[k].min_flow;
      if (high <= low) return false;
    }
    prev = k;
  }
  return true;
}

}  // namespace aladdin::core

// The Aladdin scheduler: optimized maximum-flow scheduling of LLAs
// (Algorithm 1) over the aggregated network, with priority weights,
// the multidimensional nonlinear capacity function, and migration /
// preemption repair.
//
// Pipeline per Schedule() call:
//   1. Flow augmentation — containers are admitted in submission order;
//      each is routed along its shortest (tightest-fit) admissible path
//      s→T→A→G→R→N→t. IL and DL prune the search per §IV.A.
//   2. Repair — containers the augmentation could not admit are retried
//      with migration (Fig. 3b) and priority-safe preemption (Fig. 3a),
//      highest weighted flow first (Eq. 9).
//   3. Compaction — bounded rescheduling that drains lightly-used machines
//      (Fig. 7c), recovering packing quality for adversarial arrival orders
//      at a small migration cost (Fig. 13b).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/thread_pool.h"
#include "core/migration.h"
#include "core/network.h"
#include "core/weights.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"

namespace aladdin::core {

struct AladdinOptions {
  // Latency optimisations (§IV.A). The evaluation's three policies:
  //   Aladdin          -> il=false, dl=false
  //   Aladdin+IL       -> il=true,  dl=false
  //   Aladdin+IL+DL    -> il=true,  dl=true  (the default / production mode)
  bool enable_il = true;
  bool enable_dl = true;

  // Weighted-flow knob from Fig. 9: geometric base for the per-class
  // weights. 0 means "derive minimal weights per Eq. 4–5 from the workload".
  std::int64_t weight_base = 16;

  // Repair / rescheduling (§III.B, §IV.D). Repair passes iterate until a
  // pass stops making progress or this budget is hit (the cost stays within
  // the paper's O(V·E²·c) bound, §IV.D).
  bool enable_repair = true;
  int max_repair_passes = 4;
  RepairOptions repair;

  // Packing compaction (bounded; see RepairEngine::Compact).
  bool enable_compaction = true;
  int compaction_passes = 3;
  // Ceiling on compaction migrations, as a fraction of total containers
  // (keeps Fig. 13(b) in the paper's ~1.7 % regime).
  double compaction_migration_fraction = 0.02;

  // Incremental network reuse: keep the aggregated s→T→A→G→R→N→t network
  // alive across Schedule() calls against the same ClusterState, replaying
  // the state's dirty log instead of rebuilding — placements are
  // bit-identical to a fresh rebuild (memoised IL failures stay valid only
  // while a machine's change epoch is unchanged). Off reproduces the
  // rebuild-per-call behaviour, mainly for A/B tests and benchmarks.
  bool incremental_network = true;

  // Worker threads for the admissible-path search. 0 = hardware
  // concurrency, 1 = serial (no pool). Any value yields identical
  // placements and search counters — see SearchOptions::pool.
  int threads = 0;

  // Group-decomposed pathfinding (ISSUE 9): place runs of isomorphic
  // siblings (same app, identical request, consecutive in weighted-flow
  // order) through one sorted-capacity waterfall instead of per-container
  // best-fit walks. Placements, counters, journal and IL memo state are
  // bit-identical to the per-container path (the waterfall replays it
  // exactly); the knob exists for A/B tests and as a fallback switch.
  // Only engages alongside enable_dl — without DL the search is a full
  // enumeration, which the waterfall does not model.
  bool group_waterfall = true;
};

class AladdinScheduler : public sim::Scheduler {
 public:
  explicit AladdinScheduler(AladdinOptions options = {});

  [[nodiscard]] std::string name() const override;

  sim::ScheduleOutcome Schedule(const sim::ScheduleRequest& request,
                                cluster::ClusterState& state) override;

  // Batch-incremental entry point (ISSUE 9 tentpole): solves a micro-batch
  // of requests against one warm network — weights prepared once, one
  // Refresh() up front, each request's own mutations folded in eagerly.
  // Outcomes are emitted in request order and are bit-identical to calling
  // Schedule() per request (journal/ledger/SLO streams included); only the
  // core/net_syncs, core/net_sync_noop and core/weights_cached counters
  // differ, because the batch pays the prep once. After each request a
  // kBatchScheduled journal marker records the request's index and size.
  std::vector<sim::ScheduleOutcome> ScheduleBatch(
      std::span<const sim::ScheduleRequest> requests,
      cluster::ClusterState& state);

  [[nodiscard]] const AladdinOptions& options() const { return options_; }
  // Weights used by the last Schedule() call (for tests/ablation).
  [[nodiscard]] const PriorityWeights& last_weights() const {
    return weights_;
  }

 private:
  // Returns the network to schedule on: the cached one (synced with the
  // state's dirty log) when it is still attached to this exact state
  // object, else a freshly attached rebuild.
  AggregatedNetwork& PrepareNetwork(cluster::ClusterState& state);
  // Eq. 3–5 weights with a content-fingerprint cache: recomputation (and
  // the Eq. 5 audit) is skipped when the workload's priority/request
  // population is unchanged — the common case for every request after the
  // first in a micro-batch and for no-arrival ticks.
  void PrepareWeights(const trace::Workload& workload);
  // The per-request pipeline (augment → repair → compact) against an
  // already-prepared network; Schedule() and ScheduleBatch() both land
  // here. `phases_before` is the capture the outcome's phase diff closes.
  sim::ScheduleOutcome ScheduleOne(
      const sim::ScheduleRequest& request, cluster::ClusterState& state,
      AggregatedNetwork& network,
      const std::vector<obs::PhaseDelta>& phases_before);
  // Lazily creates the search pool per options_.threads (null when serial).
  [[nodiscard]] ThreadPool* SearchPool();

  AladdinOptions options_;
  PriorityWeights weights_;
  std::uint64_t weights_fingerprint_ = 0;
  bool weights_ready_ = false;

  // Incremental reuse state: the network survives Schedule() calls; the
  // instance id (not just the address — states are frequently stack- or
  // optional-allocated) proves the attached state is still the same one.
  std::unique_ptr<AggregatedNetwork> network_;
  std::uint64_t attached_state_id_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  bool pool_created_ = false;

  // Per-tick pooling: the arena backs Schedule()'s transient containers
  // (reset at tick start, chunks retained), the repair scratch persists the
  // RepairEngine's working buffers across ticks, and pending_ recycles the
  // augmentation backlog buffer. After a warmup tick the steady-state
  // Schedule() leaves only the escaping outcome allocations.
  Arena arena_;
  RepairEngine::Scratch repair_scratch_;
  std::vector<cluster::ContainerId> pending_;
  // Group-waterfall staging: the current sibling run and its per-container
  // results (capacity retained across ticks, like pending_).
  std::vector<cluster::ContainerId> group_run_;
  std::vector<cluster::MachineId> group_out_;
};

}  // namespace aladdin::core

// Migration and preemption (§III.B, Fig. 3; cost discussion §IV.D, Fig. 7).
//
// When the path search cannot admit a container, Aladdin increases the flow
// by restructuring existing placements:
//  * Migration (Fig. 3b): a blocker — any priority — moves to an alternative
//    machine; nobody loses their placement.
//  * Preemption (Fig. 3a, made priority-safe by weighted flows): a blocker
//    with strictly lower weighted flow is evicted and re-queued; Eq. 5
//    guarantees a high-priority container can never be displaced by a
//    lower-priority one, because preemption chains strictly decrease
//    weighted flow and therefore terminate.
//
// The engine also hosts the compaction pass: emptying lightly-loaded
// machines by migrating their containers into existing gaps, which is how
// rescheduling recovers packing quality for adversarial arrival orders
// (Fig. 7c) at a bounded migration cost (Fig. 13b).
#pragma once

#include <cstdint>
#include <vector>

#include "core/network.h"
#include "core/weights.h"

namespace aladdin::core {

struct RepairOptions {
  int max_attempts_per_container = 3;
  // Machines examined (descending free CPU) per repair attempt.
  int candidate_machines = 64;
  // Victims displaced per repair (paper's bound: cost stays within
  // O(V·E²·c), §IV.D).
  int max_victims = 4;
  bool allow_migration = true;
  bool allow_preemption = true;
};

class RepairEngine {
 public:
  // Reusable per-tick scratch. A RepairEngine is cheap to construct (three
  // pointers), so the scheduler rebuilds one per Schedule() — but its
  // working buffers are not: hand the engine a Scratch that outlives it and
  // every repair pass after warmup runs without heap allocation. Without an
  // external Scratch the engine owns a private one (tests, one-shot use).
  struct Scratch {
    std::vector<cluster::ContainerId> victims;
    std::vector<cluster::ContainerId> fillers;
    std::vector<std::pair<cluster::ContainerId, cluster::MachineId>> moved;
    std::vector<cluster::ContainerId> preempted;
    std::vector<cluster::ContainerId> requeue;
    // Repair's FIFO: a vector plus head cursor (total pushes are bounded by
    // pending + preemption-chain length, so nothing is ever reclaimed
    // mid-call and a deque's block allocations are pure overhead).
    std::vector<cluster::ContainerId> queue;
    // Per-container attempt counts, epoch-stamped so clearing between
    // Repair() calls is O(1) instead of a rehash/fill.
    std::vector<std::uint32_t> attempt_stamp;
    std::vector<int> attempt_count;
    std::uint32_t attempt_epoch = 0;
    // Compact's per-pass machine snapshot.
    std::vector<std::pair<std::int64_t, cluster::MachineId>> used;
    std::vector<cluster::ContainerId> tenants;
  };

  RepairEngine(AggregatedNetwork& network, const PriorityWeights& weights,
               const RepairOptions& options, Scratch* scratch = nullptr);

  // Attempts to place every container in `pending`, highest weighted flow
  // first. Preempted victims join the queue (always at strictly lower
  // weighted flow). Returns the containers that remain unplaced.
  std::vector<cluster::ContainerId> Repair(
      std::vector<cluster::ContainerId> pending, const SearchOptions& search,
      SearchCounters& counters);

  // Compaction: tries to fully drain the least-utilised machines into other
  // used machines without creating violations. Stops after `max_passes`
  // sweeps, when a sweep frees no machine, or when `migration_budget` moves
  // have been spent. Returns machines freed.
  int Compact(const SearchOptions& search, SearchCounters& counters,
              int max_passes, std::int64_t migration_budget);

 private:
  // One placement attempt for `c` including restructuring. Returns true if
  // `c` ends up deployed. Preempted victims are appended to `requeue`.
  bool TryPlace(cluster::ContainerId c, const SearchOptions& search,
                SearchCounters& counters,
                std::vector<cluster::ContainerId>& requeue);

  // Attempt to clear space for `c` on machine `m` by migrating/preempting
  // at most max_victims blockers. Returns true (and deploys c) on success;
  // restores the exact prior placement on failure.
  bool RepairOnMachine(cluster::ContainerId c, cluster::MachineId m,
                       const SearchOptions& search, SearchCounters& counters,
                       std::vector<cluster::ContainerId>& requeue);

  // Attempt slot for `c`, zeroed on first touch within the current epoch
  // (Repair() bumps the epoch once per call).
  int& AttemptCount(cluster::ContainerId c);

  AggregatedNetwork& network_;
  const PriorityWeights& weights_;
  RepairOptions options_;
  Scratch owned_scratch_;  // used when no external scratch is supplied
  Scratch& scratch_;
};

}  // namespace aladdin::core

// Migration and preemption (§III.B, Fig. 3; cost discussion §IV.D, Fig. 7).
//
// When the path search cannot admit a container, Aladdin increases the flow
// by restructuring existing placements:
//  * Migration (Fig. 3b): a blocker — any priority — moves to an alternative
//    machine; nobody loses their placement.
//  * Preemption (Fig. 3a, made priority-safe by weighted flows): a blocker
//    with strictly lower weighted flow is evicted and re-queued; Eq. 5
//    guarantees a high-priority container can never be displaced by a
//    lower-priority one, because preemption chains strictly decrease
//    weighted flow and therefore terminate.
//
// The engine also hosts the compaction pass: emptying lightly-loaded
// machines by migrating their containers into existing gaps, which is how
// rescheduling recovers packing quality for adversarial arrival orders
// (Fig. 7c) at a bounded migration cost (Fig. 13b).
#pragma once

#include <cstdint>
#include <vector>

#include "core/network.h"
#include "core/weights.h"

namespace aladdin::core {

struct RepairOptions {
  int max_attempts_per_container = 3;
  // Machines examined (descending free CPU) per repair attempt.
  int candidate_machines = 64;
  // Victims displaced per repair (paper's bound: cost stays within
  // O(V·E²·c), §IV.D).
  int max_victims = 4;
  bool allow_migration = true;
  bool allow_preemption = true;
};

class RepairEngine {
 public:
  RepairEngine(AggregatedNetwork& network, const PriorityWeights& weights,
               const RepairOptions& options);

  // Attempts to place every container in `pending`, highest weighted flow
  // first. Preempted victims join the queue (always at strictly lower
  // weighted flow). Returns the containers that remain unplaced.
  std::vector<cluster::ContainerId> Repair(
      std::vector<cluster::ContainerId> pending, const SearchOptions& search,
      SearchCounters& counters);

  // Compaction: tries to fully drain the least-utilised machines into other
  // used machines without creating violations. Stops after `max_passes`
  // sweeps, when a sweep frees no machine, or when `migration_budget` moves
  // have been spent. Returns machines freed.
  int Compact(const SearchOptions& search, SearchCounters& counters,
              int max_passes, std::int64_t migration_budget);

 private:
  // One placement attempt for `c` including restructuring. Returns true if
  // `c` ends up deployed. Preempted victims are appended to `requeue`.
  bool TryPlace(cluster::ContainerId c, const SearchOptions& search,
                SearchCounters& counters,
                std::vector<cluster::ContainerId>& requeue);

  // Attempt to clear space for `c` on machine `m` by migrating/preempting
  // at most max_victims blockers. Returns true (and deploys c) on success;
  // restores the exact prior placement on failure.
  bool RepairOnMachine(cluster::ContainerId c, cluster::MachineId m,
                       const SearchOptions& search, SearchCounters& counters,
                       std::vector<cluster::ContainerId>& requeue);

  AggregatedNetwork& network_;
  const PriorityWeights& weights_;
  RepairOptions options_;
};

}  // namespace aladdin::core

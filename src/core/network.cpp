#include "core/network.h"

#include <algorithm>
#include <span>
#include <vector>

#include "common/analysis.h"
#include "common/check.h"
#include "obs/trace.h"

namespace aladdin::core {

namespace {
template <typename T>
std::size_t Idx(T id) {
  return static_cast<std::size_t>(id.value());
}
}  // namespace

AggregatedNetwork::AggregatedNetwork(const cluster::Topology& topology)
    : topology_(&topology) {}

void AggregatedNetwork::Attach(cluster::ClusterState* state) {
  ALADDIN_PHASE_SCOPE("core/net_build");
  ALADDIN_METRIC_ADD("core/net_builds", 1);
  ALADDIN_CHECK(state != nullptr);
  ALADDIN_CHECK(&state->topology() == topology_);
  state_ = state;
  // Mutations applied to the state behind our back land in its dirty log;
  // Sync() replays them from this cursor.
  state_->EnableDirtyLog();
  dirty_cursor_ = state_->DirtyLogEnd();

  const std::size_t machines = topology_->machine_count();
  by_free_.clear();
  // analyze:allow(A103) Attach is the full (re)build; per-tick Sync() replays the dirty log
  indexed_free_.assign(machines, 0);
  epoch_.assign(machines, 0);  // analyze:allow(A103) rebuild arm, as above
  rack_free_.assign(topology_->rack_count(), {});  // analyze:allow(A103) rebuild arm, as above
  subcluster_free_.assign(topology_->subcluster_count(), {});  // analyze:allow(A103) rebuild arm, as above
  rack_max_.assign(topology_->rack_count(), 0);  // analyze:allow(A103) rebuild arm, as above
  il_memo_.assign(state->applications().size(), {});  // analyze:allow(A103) rebuild arm, as above

  // Build rack multisets first, then seed sub-cluster maxima.
  for (const auto& machine : topology_->machines()) {
    const std::int64_t free = state_->Free(machine.id).cpu_millis();
    indexed_free_[Idx(machine.id)] = free;
    by_free_.insert({free, machine.id.value()});
    rack_free_[Idx(machine.rack)].insert(free);
  }
  for (std::size_t r = 0; r < rack_free_.size(); ++r) {
    const auto& set = rack_free_[r];
    rack_max_[r] = set.empty() ? 0 : *set.rbegin();
    const auto g = topology_->RackSubCluster(
        cluster::RackId(static_cast<std::int32_t>(r)));
    subcluster_free_[Idx(g)].insert(rack_max_[r]);
  }
}

void AggregatedNetwork::Sync() {
  ALADDIN_CHECK(state_ != nullptr) << "Sync() before Attach()";
  // Applications are append-only while a workload is live; grow the IL
  // tables so new apps index safely. Existing memos stay valid: a memoised
  // (app, machine) failure is keyed to the machine's change epoch, and any
  // machine mutated since the memo was recorded gets its epoch bumped by
  // the replay below.
  if (il_memo_.size() < state_->applications().size()) {
    il_memo_.resize(state_->applications().size());
  }
  bool overflowed = false;
  const std::span<const cluster::MachineId> dirty =
      state_->DirtySince(dirty_cursor_, &overflowed);
  if (overflowed) {
    Attach(state_);  // cursor fell off the retained window; full rebuild
    return;
  }
  if (dirty.empty()) {
    // Noop fast path: nothing changed behind our back since the last
    // replay, so the aggregates are already coherent — skip the phase
    // scope and the replay loop entirely. Witnessed by the counter so the
    // batch path's "one Refresh per micro-batch" claim is testable.
    ALADDIN_METRIC_ADD("core/net_sync_noop", 1);
    return;
  }
  // Scoped below the overflow branch so the exclusive net_build phase the
  // rebuild records never nests inside net_sync (exclusive phases must stay
  // disjoint for the tick-coverage sum).
  ALADDIN_PHASE_SCOPE("core/net_sync");
  ALADDIN_METRIC_ADD("core/net_syncs", 1);
  ALADDIN_METRIC_ADD("core/net_sync_dirty", dirty.size());
  for (cluster::MachineId m : dirty) Reindex(m);
  dirty_cursor_ = state_->DirtyLogEnd();
}

std::int64_t AggregatedNetwork::FreeCpu(cluster::MachineId m) const {
  return state_->Free(m).cpu_millis();
}

void AggregatedNetwork::Reindex(cluster::MachineId m) {
  // The epoch bump happens even when the free CPU is unchanged (a machine
  // can mutate without its residual moving — e.g. equal-sized evict+deploy
  // between Syncs), so memoised IL failures never outlive a real change.
  ++epoch_[Idx(m)];
  ReindexKeys(m);
}

void AggregatedNetwork::ReindexKeys(cluster::MachineId m) {
  const std::int64_t old_free = indexed_free_[Idx(m)];
  const std::int64_t new_free = FreeCpu(m);
  if (old_free == new_free) return;

  // Re-key via node extraction: erase+insert would free and re-malloc a
  // tree node per mutation, and Reindex runs once per Deploy/Evict.
  auto nh = by_free_.extract({old_free, m.value()});
  ALADDIN_DCHECK(!nh.empty());
  nh.value() = {new_free, m.value()};
  by_free_.insert(std::move(nh));
  indexed_free_[Idx(m)] = new_free;

  const cluster::RackId rack = topology_->machine(m).rack;
  auto& rset = rack_free_[Idx(rack)];
  auto rh = rset.extract(rset.find(old_free));
  rh.value() = new_free;
  rset.insert(std::move(rh));
  const std::int64_t new_rack_max = rset.empty() ? 0 : *rset.rbegin();
  if (new_rack_max != rack_max_[Idx(rack)]) {
    const auto g = topology_->RackSubCluster(rack);
    auto& gset = subcluster_free_[Idx(g)];
    auto gh = gset.extract(gset.find(rack_max_[Idx(rack)]));
    gh.value() = new_rack_max;
    gset.insert(std::move(gh));
    rack_max_[Idx(rack)] = new_rack_max;
  }
}

// The mutation wrappers reindex eagerly, then advance the dirty cursor past
// their own journal entries — but only when no unconsumed external entries
// precede them (replaying an already-reindexed machine in Sync() is merely
// a redundant epoch bump, never a correctness problem).

void AggregatedNetwork::Deploy(cluster::ContainerId c, cluster::MachineId m) {
  const std::uint64_t before = state_->DirtyLogEnd();
  state_->Deploy(c, m);
  Reindex(m);
  if (dirty_cursor_ == before) dirty_cursor_ = state_->DirtyLogEnd();
}

void AggregatedNetwork::Evict(cluster::ContainerId c) {
  const cluster::MachineId m = state_->PlacementOf(c);
  const std::uint64_t before = state_->DirtyLogEnd();
  state_->Evict(c);
  Reindex(m);
  if (dirty_cursor_ == before) dirty_cursor_ = state_->DirtyLogEnd();
}

void AggregatedNetwork::Migrate(cluster::ContainerId c, cluster::MachineId to) {
  const cluster::MachineId from = state_->PlacementOf(c);
  const std::uint64_t before = state_->DirtyLogEnd();
  state_->Migrate(c, to);
  Reindex(from);
  Reindex(to);
  if (dirty_cursor_ == before) dirty_cursor_ = state_->DirtyLogEnd();
}

void AggregatedNetwork::Preempt(cluster::ContainerId c) {
  const cluster::MachineId m = state_->PlacementOf(c);
  const std::uint64_t before = state_->DirtyLogEnd();
  state_->Preempt(c);
  Reindex(m);
  if (dirty_cursor_ == before) dirty_cursor_ = state_->DirtyLogEnd();
}

void AggregatedNetwork::DeployKeyDeferred(cluster::ContainerId c,
                                          cluster::MachineId m) {
  // Same contract as Deploy(), except the sorted-key update is deferred:
  // the epoch bump (IL memo invalidation) is taken eagerly so memo
  // semantics match the serial wrapper exactly, while by_free_/rack
  // aggregates stay frozen until the group flush re-keys the moved set.
  const std::uint64_t before = state_->DirtyLogEnd();
  state_->Deploy(c, m);
  ++epoch_[Idx(m)];
  if (dirty_cursor_ == before) dirty_cursor_ = state_->DirtyLogEnd();
}

ALADDIN_HOT std::size_t AggregatedNetwork::PlaceGroupRun(
    std::span<const cluster::ContainerId> run, const SearchOptions& options,
    SearchCounters& counters, std::span<cluster::MachineId> out) {
  ALADDIN_TRACE_SCOPE("core/group_walk");
  ALADDIN_CHECK(state_ != nullptr);
  ALADDIN_DCHECK(run.size() >= 2 && run.size() == out.size());
  const cluster::ApplicationId app = state_->containers()[Idx(run[0])].app;
  const cluster::ResourceVector& request =
      state_->containers()[Idx(run[0])].request;
  const std::int64_t need = request.cpu_millis();
  ALADDIN_DCHECK(need > 0);
#if ALADDIN_DCHECK_IS_ON()
  for (cluster::ContainerId c : run) {
    ALADDIN_DCHECK(state_->containers()[Idx(c)].app == app);
    ALADDIN_DCHECK(state_->containers()[Idx(c)].request == request);
    ALADDIN_DCHECK(!state_->IsPlaced(c));
  }
#endif
  const bool use_il =
      options.enable_il &&
      state_->applications()[Idx(app)].containers.size() > 1;

  group_snapshot_.clear();
  group_touched_.clear();
  group_moved_.clear();
  group_prefix_failed_.clear();

  // No re-key touches by_free_ until the flush, so this iterator survives
  // the whole run: the frozen snapshot extends lazily, chunk by chunk, only
  // as far as the merged walks actually reach. Machines deployed mid-run
  // are only ever ones the walk already materialised, so chunks past the
  // frontier never hold a stale key.
  auto snap_it = by_free_.lower_bound({need, -1});
  bool snap_done = (snap_it == by_free_.end());
  auto extend_snapshot = [&] {
    if (snap_done) return;
    constexpr std::size_t kChunk = 64;
    auto& machines = group_chunk_machines_;
    machines.clear();
    const std::size_t base = group_snapshot_.size();
    for (std::size_t n = 0; snap_it != by_free_.end() && n < kChunk;
         ++snap_it, ++n) {
      group_snapshot_.push_back(
          GroupEntry{snap_it->first, snap_it->second, kGroupFresh, 0});
      machines.push_back(snap_it->second);
    }
    snap_done = (snap_it == by_free_.end());
    // analyze:allow(A103) pooled scratch, capacity retained across runs
    group_chunk_fits_.resize(machines.size());
    // Batched Eq. 6 over the chunk: one shared request tuple against a flat
    // machine array. Valid for the entire run — a snapshot entry stays
    // kGroupFresh only while its machine is untouched.
    CapacityFunction::BatchFits(*state_, run[0], machines, group_chunk_fits_);
    for (std::size_t i = 0; i < machines.size(); ++i) {
      group_snapshot_[base + i].fit = group_chunk_fits_[i];
    }
  };
  const auto entry_less = [](const GroupEntry& a, const GroupEntry& b) {
    return a.free != b.free ? a.free < b.free : a.machine < b.machine;
  };

  std::size_t placed = 0;
  std::size_t failed_from = run.size();
  // Snapshot entries in [0, prefix_end) are settled (failed or moved) by
  // earlier siblings; later walks start past them. The failed ones live in
  // group_prefix_failed_ (sorted, appended in snapshot order), and the
  // serial walk's counter bumps for re-visiting them — memo-prune under IL,
  // re-probe-and-fail without — are charged wholesale per sibling via one
  // binary search: the serial merge stops at the winner, so only failed
  // keys strictly below the winner's key would have been visited.
  std::size_t prefix_end = 0;
  for (std::size_t s = 0; s < run.size(); ++s) {
    const cluster::ContainerId c = run[s];
    cluster::MachineId winner = cluster::MachineId::Invalid();
    GroupEntry winner_key{0, 0, 0, 0};
    // Two-pointer merge of the frozen snapshot and the re-inserted winners:
    // candidates stream by ascending (free, machine), exactly the order the
    // serial per-sibling walk would visit live keys in.
    std::size_t si = prefix_end;
    std::size_t ti = 0;
    while (true) {
      if (si == group_snapshot_.size()) extend_snapshot();
      const bool have_snap = si < group_snapshot_.size();
      const bool have_touch = ti < group_touched_.size();
      if (!have_snap && !have_touch) break;
      const bool take_snap =
          have_snap && (!have_touch ||
                        entry_less(group_snapshot_[si], group_touched_[ti]));
      if (take_snap) {
        GroupEntry& e = group_snapshot_[si];
        ++si;
        // Beyond the settled prefix every snapshot entry is fresh: a walk
        // only ever marks entries it visits, and the prefix advances past
        // everything visited before the next walk starts.
        ALADDIN_DCHECK(e.state == kGroupFresh);
        const cluster::MachineId m(e.machine);
        // Untouched machine: a pre-run IL memo is still valid.
        if (use_il && IlPruned(app, m)) {
          ++counters.il_prunes;
          e.state = kGroupFailed;
          continue;
        }
        ++counters.explored_paths;
        if (e.fit == 0 || state_->Blacklisted(c, m)) {
          if (use_il) RecordIlFailure(app, m);
          e.state = kGroupFailed;
          continue;
        }
        winner = m;
        winner_key = e;
        e.state = kGroupMoved;
        break;
      }
      GroupEntry& e = group_touched_[ti];
      if (e.state == kGroupFailed) {
        use_il ? ++counters.il_prunes : ++counters.explored_paths;
        ++ti;
        continue;
      }
      // Re-inserted winner: its epoch was bumped at deploy time, so any
      // pre-run memo is stale — full live evaluation, like the serial walk.
      ++counters.explored_paths;
      const cluster::MachineId m(e.machine);
      const CapacityCheck check = CapacityFunction::Evaluate(*state_, c, m);
      if (!check.Admits()) {
        if (use_il) RecordIlFailure(app, m);
        e.state = kGroupFailed;
        ++ti;
        continue;
      }
      winner = m;
      winner_key = e;
      group_touched_.erase(group_touched_.begin() +
                           static_cast<std::ptrdiff_t>(ti));
      break;
    }
    // Charge the skipped failed-prefix visits. On a win, only keys the
    // serial merge would have reached (strictly below the winner's key — a
    // touched winner can sit below failed snapshot keys) count; on
    // exhaustion the serial walk would have re-visited the whole prefix.
    const std::int64_t skipped =
        winner.valid()
            ? std::lower_bound(group_prefix_failed_.begin(),
                               group_prefix_failed_.end(), winner_key,
                               entry_less) -
                  group_prefix_failed_.begin()
            : static_cast<std::int64_t>(group_prefix_failed_.size());
    if (skipped > 0) {
      use_il ? counters.il_prunes += skipped
             : counters.explored_paths += skipped;
    }
    if (!winner.valid()) {
      failed_from = s;
      break;
    }
    // Settle this walk's snapshot range: entries it failed were counted
    // live above and now join the prefix list (still in ascending key
    // order) so later siblings skip them in O(log).
    for (std::size_t i = prefix_end; i < si; ++i) {
      if (group_snapshot_[i].state == kGroupFailed) {
        group_prefix_failed_.push_back(group_snapshot_[i]);
      }
    }
    prefix_end = si;
    out[s] = winner;
    ++counters.dl_stops;
    DeployKeyDeferred(c, winner);
    group_moved_.push_back(winner.value());
    const std::int64_t new_free = FreeCpu(winner);
    if (new_free >= need) {
      // Still a candidate for later siblings, at its live (smaller) key.
      const GroupEntry fresh{new_free, winner.value(), kGroupFresh, 0};
      group_touched_.insert(std::upper_bound(group_touched_.begin(),
                                             group_touched_.end(), fresh,
                                             entry_less),
                            fresh);
    }
    ++placed;
  }

  if (failed_from < run.size()) {
    // The failing sibling exhausted (and fully materialised) the candidate
    // space, memoising every probe; siblings are isomorphic and nothing
    // mutates after a failure, so each later sibling would repeat the same
    // fruitless walk. Charge those walks wholesale.
    std::int64_t candidates =
        static_cast<std::int64_t>(group_touched_.size());
    for (const GroupEntry& e : group_snapshot_) {
      if (e.state != kGroupMoved) ++candidates;
    }
    for (std::size_t s = failed_from; s < run.size(); ++s) {
      out[s] = cluster::MachineId::Invalid();
      if (s > failed_from) {
        use_il ? counters.il_prunes += candidates
               : counters.explored_paths += candidates;
      }
    }
  }

  // Flush the deferred re-keys before any caller-side diagnosis or search
  // reads the aggregates. Idempotent per machine: a double winner re-keys
  // straight to its final residual once, then early-outs.
  for (std::int32_t m : group_moved_) ReindexKeys(cluster::MachineId(m));
  ALADDIN_METRIC_ADD("core/group_runs", 1);
  ALADDIN_METRIC_ADD("core/group_placed", placed);
  return placed;
}

bool AggregatedNetwork::IlPruned(cluster::ApplicationId app,
                                 cluster::MachineId m) const {
  const auto& memo = il_memo_[Idx(app)];
  if (memo.empty()) return false;  // app never recorded a failure
  return memo[Idx(m)] == epoch_[Idx(m)] + 1;
}

void AggregatedNetwork::RecordIlFailure(cluster::ApplicationId app,
                                        cluster::MachineId m) {
  auto& memo = il_memo_[Idx(app)];
  // analyze:allow(A103) lazy once-per-app materialisation, then reused
  if (memo.empty()) memo.assign(topology_->machine_count(), 0);
  memo[Idx(m)] = epoch_[Idx(m)] + 1;
}

cluster::MachineId AggregatedNetwork::FindMachine(cluster::ContainerId c,
                                                  const SearchOptions& options,
                                                  SearchCounters& counters,
                                                  cluster::MachineId exclude) {
  ALADDIN_TRACE_SCOPE("core/find_machine");
  ALADDIN_CHECK(state_ != nullptr);
  // DL changes the traversal (first saturating path wins); without it the
  // search enumerates every candidate path through the aggregates. Both
  // traversals return the same machine — the tightest admissible one.
  const bool parallel =
      options.pool != nullptr && options.pool->thread_count() > 1;
  if (options.enable_dl) {
    return parallel ? BestFitWalkParallel(c, options, counters, exclude)
                    : FindByBestFitWalk(c, options, counters, exclude);
  }
  return parallel ? EnumerateParallel(c, options, counters, exclude)
                  : FindByEnumeration(c, options, counters, exclude);
}

obs::Cause AggregatedNetwork::DiagnoseFailure(cluster::ContainerId c) const {
  ALADDIN_CHECK(state_ != nullptr);
  const cluster::Container& container = state_->containers()[Idx(c)];
  const std::int64_t need_cpu = container.request.cpu_millis();
  // O(1) global-headroom check: by_free_ is sorted by free CPU, so the last
  // key is the cluster's emptiest machine.
  if (by_free_.empty() || by_free_.rbegin()->first < need_cpu) {
    return obs::Cause::kCapacityExhaustedCpu;
  }
  const bool self_conflicts =
      state_->constraints().Conflicts(container.app, container.app);
  std::int64_t mem_blocked = 0;
  std::int64_t intra_blocked = 0;
  std::int64_t inter_blocked = 0;
  for (auto it = by_free_.lower_bound({need_cpu, -1}); it != by_free_.end();
       ++it) {
    const cluster::MachineId m(it->second);
    const CapacityCheck check = CapacityFunction::Evaluate(*state_, c, m);
    if (check.Admits()) return obs::Cause::kNoAdmissiblePath;
    if (!check.fits) {
      ++mem_blocked;
      continue;
    }
    // Blacklisted: attribute to the container's own application when its
    // within-app anti-affinity is what blocks this machine, else to a
    // conflicting foreign application.
    bool intra = false;
    if (self_conflicts) {
      for (const auto& [app, count] : state_->AppsOn(m)) {
        if (app == container.app.value() && count > 0) {
          intra = true;
          break;
        }
      }
    }
    ++(intra ? intra_blocked : inter_blocked);
  }
  // Dominant cause wins; anti-affinity outranks memory on ties (a blocked
  // machine with the memory free is the more actionable explanation), and
  // intra outranks inter (the container's own app is the simpler story).
  const std::int64_t blacklist_blocked = intra_blocked + inter_blocked;
  if (blacklist_blocked == 0 && mem_blocked == 0) {
    return obs::Cause::kNoAdmissiblePath;  // nothing CPU-feasible after all
  }
  if (mem_blocked > blacklist_blocked) {
    return obs::Cause::kCapacityExhaustedMem;
  }
  return intra_blocked >= inter_blocked ? obs::Cause::kAntiAffinityIntraApp
                                        : obs::Cause::kAntiAffinityInterApp;
}

cluster::MachineId AggregatedNetwork::FindByEnumeration(
    cluster::ContainerId c, const SearchOptions& options,
    SearchCounters& counters, cluster::MachineId exclude) {
  const cluster::ApplicationId app = state_->containers()[Idx(c)].app;
  const std::int64_t need = state_->containers()[Idx(c)].request.cpu_millis();
  // IL exploits isomorphism between sibling containers; a single-container
  // application has no siblings, so the memo would be pure overhead.
  const bool use_il =
      options.enable_il &&
      state_->applications()[Idx(app)].containers.size() > 1;

  cluster::MachineId best = cluster::MachineId::Invalid();
  std::int64_t best_free = 0;
  // Walk A → G_k → R_x → N_y, pruning aggregates whose residual cannot
  // admit the request.
  for (std::size_t g = 0; g < subcluster_free_.size(); ++g) {
    ++counters.explored_paths;  // G vertex probe
    const auto& gset = subcluster_free_[g];
    if (gset.empty() || *gset.rbegin() < need) continue;
    for (cluster::RackId rack : topology_->SubClusterRacks(
             cluster::SubClusterId(static_cast<std::int32_t>(g)))) {
      ++counters.explored_paths;  // R vertex probe
      if (rack_max_[Idx(rack)] < need) continue;
      for (cluster::MachineId m : topology_->RackMachines(rack)) {
        if (m == exclude) continue;
        if (use_il && IlPruned(app, m)) {
          ++counters.il_prunes;
          continue;
        }
        ++counters.explored_paths;  // N vertex probe
        const CapacityCheck check = CapacityFunction::Evaluate(*state_, c, m);
        if (!check.Admits()) {
          // Memoise only blacklist rejections; fit rejections are cheaper
          // to recompute than to look up.
          if (use_il && check.blacklisted) RecordIlFailure(app, m);
          continue;
        }
        const std::int64_t free = indexed_free_[Idx(m)];
        if (!best.valid() || free < best_free ||
            (free == best_free && m < best)) {
          best = m;
          best_free = free;
        }
      }
    }
  }
  return best;
}

cluster::MachineId AggregatedNetwork::FindByBestFitWalk(
    cluster::ContainerId c, const SearchOptions& options,
    SearchCounters& counters, cluster::MachineId exclude) {
  const cluster::ApplicationId app = state_->containers()[Idx(c)].app;
  const std::int64_t need = state_->containers()[Idx(c)].request.cpu_millis();
  const bool use_il =
      options.enable_il &&
      state_->applications()[Idx(app)].containers.size() > 1;

  for (auto it = by_free_.lower_bound({need, -1}); it != by_free_.end();
       ++it) {
    const cluster::MachineId m(it->second);
    if (m == exclude) continue;
    if (use_il && IlPruned(app, m)) {
      ++counters.il_prunes;
      continue;
    }
    ++counters.explored_paths;
    const CapacityCheck check = CapacityFunction::Evaluate(*state_, c, m);
    if (check.Admits()) {
      // Depth limiting: this path saturates the container's s→T_i edge;
      // no further path can increase its flow (§IV.A, Fig. 5b).
      ++counters.dl_stops;
      return m;
    }
    if (use_il) RecordIlFailure(app, m);
  }
  return cluster::MachineId::Invalid();
}

cluster::MachineId AggregatedNetwork::BestFitWalkParallel(
    cluster::ContainerId c, const SearchOptions& options,
    SearchCounters& counters, cluster::MachineId exclude) {
  const cluster::ApplicationId app = state_->containers()[Idx(c)].app;
  const std::int64_t need = state_->containers()[Idx(c)].request.cpu_millis();
  const bool use_il =
      options.enable_il &&
      state_->applications()[Idx(app)].containers.size() > 1;

  // The serial walk probes machines in ascending-free order and stops at
  // the first admissible one. Here we gather candidates in that same order,
  // score a batch concurrently (CapacityFunction::Evaluate only reads the
  // state), then take the first admitted candidate *in gather order* —
  // never the first finisher. Memo writes are deferred to the reduction, so
  // workers race on nothing; within one walk that is equivalent, because a
  // machine is visited at most once and memo entries are per (app,machine).
  // Counters are charged exactly for the prefix the serial walk would have
  // visited, so results AND counters are bit-identical to the serial walk.
  std::vector<WalkItem>& items = walk_items_;
  std::vector<std::size_t>& eval = walk_eval_;  // indices into `items`
  std::vector<std::uint8_t>& admitted = walk_admitted_;

  auto it = by_free_.lower_bound({need, -1});
  const auto end = by_free_.end();
  // Batch sizes are a fixed schedule (growing: warm clusters admit within a
  // few probes, cold searches amortise the fan-out), independent of worker
  // count and timing — determinism does not ride on load balance.
  std::size_t batch = 8;
  constexpr std::size_t kMaxBatch = 512;
  while (it != end) {
    items.clear();
    eval.clear();
    for (; it != end && eval.size() < batch; ++it) {
      const cluster::MachineId m(it->second);
      if (m == exclude) continue;  // serial walk skips silently
      const bool pruned = use_il && IlPruned(app, m);
      items.push_back(WalkItem{m.value(), pruned});
      if (!pruned) eval.push_back(items.size() - 1);
    }
    // analyze:allow(A103) pooled scratch, capacity retained across walks
    admitted.assign(eval.size(), 0);
    ParallelFor(*options.pool, 0, eval.size(), [&](std::size_t i) {
      const cluster::MachineId m(items[eval[i]].machine);
      admitted[i] =
          CapacityFunction::Evaluate(*state_, c, m).Admits() ? 1 : 0;
    });
    // First admitted candidate in gather order, if any.
    std::size_t winner_item = items.size();
    for (std::size_t i = 0; i < eval.size(); ++i) {
      if (admitted[i]) {
        winner_item = eval[i];
        break;
      }
    }
    // Replay the serial accounting over the visited prefix only.
    for (std::size_t i = 0; i < std::min(winner_item + 1, items.size());
         ++i) {
      const WalkItem& item = items[i];
      if (item.pruned) {
        ++counters.il_prunes;
        continue;
      }
      ++counters.explored_paths;
      if (i < winner_item && use_il) {
        RecordIlFailure(app, cluster::MachineId(item.machine));
      }
    }
    if (winner_item < items.size()) {
      ++counters.dl_stops;
      return cluster::MachineId(items[winner_item].machine);
    }
    batch = std::min(batch * 4, kMaxBatch);
  }
  return cluster::MachineId::Invalid();
}

cluster::MachineId AggregatedNetwork::EnumerateParallel(
    cluster::ContainerId c, const SearchOptions& options,
    SearchCounters& counters, cluster::MachineId exclude) {
  // Sub-clusters partition the machines, so their walks are independent;
  // with a single sub-cluster there is nothing to fan out.
  if (subcluster_free_.size() < 2) {
    return FindByEnumeration(c, options, counters, exclude);
  }
  const cluster::ApplicationId app = state_->containers()[Idx(c)].app;
  const std::int64_t need = state_->containers()[Idx(c)].request.cpu_millis();
  const bool use_il =
      options.enable_il &&
      state_->applications()[Idx(app)].containers.size() > 1;

  // One task per sub-cluster, each replaying the serial G→R→N walk over its
  // slice into private buffers (IL memo reads are safe: writes are deferred,
  // and the serial walk's mid-walk writes can never influence its own later
  // reads — each machine is visited once). The reduction then runs in
  // sub-cluster order: counter sums are order-independent, the global best
  // is a strict (free, machine-id) minimum, and memoised failures land in
  // the exact serial order. SubResult slots (and their il_failures buffers)
  // persist in enum_results_; each task clears only its own slot.
  std::vector<SubResult>& results = enum_results_;
  // analyze:allow(A103) pooled slots, sized once per topology then reused
  results.resize(subcluster_free_.size());
  ParallelFor(*options.pool, 0, subcluster_free_.size(), [&](std::size_t g) {
    SubResult& out = results[g];
    out.Clear();
    ++out.explored;  // G vertex probe
    const auto& gset = subcluster_free_[g];
    if (gset.empty() || *gset.rbegin() < need) return;
    for (cluster::RackId rack : topology_->SubClusterRacks(
             cluster::SubClusterId(static_cast<std::int32_t>(g)))) {
      ++out.explored;  // R vertex probe
      if (rack_max_[Idx(rack)] < need) continue;
      for (cluster::MachineId m : topology_->RackMachines(rack)) {
        if (m == exclude) continue;
        if (use_il && IlPruned(app, m)) {
          ++out.il_prunes;
          continue;
        }
        ++out.explored;  // N vertex probe
        const CapacityCheck check = CapacityFunction::Evaluate(*state_, c, m);
        if (!check.Admits()) {
          if (use_il && check.blacklisted) out.il_failures.push_back(m.value());
          continue;
        }
        const std::int64_t free = indexed_free_[Idx(m)];
        if (out.best < 0 || free < out.best_free ||
            (free == out.best_free && m.value() < out.best)) {
          out.best = m.value();
          out.best_free = free;
        }
      }
    }
  });

  cluster::MachineId best = cluster::MachineId::Invalid();
  std::int64_t best_free = 0;
  for (const SubResult& out : results) {
    counters.explored_paths += out.explored;
    counters.il_prunes += out.il_prunes;
    for (std::int32_t m : out.il_failures) {
      RecordIlFailure(app, cluster::MachineId(m));
    }
    if (out.best < 0) continue;
    const cluster::MachineId m(out.best);
    if (!best.valid() || out.best_free < best_free ||
        (out.best_free == best_free && m < best)) {
      best = m;
      best_free = out.best_free;
    }
  }
  return best;
}

}  // namespace aladdin::core

#include "core/network.h"

#include <algorithm>

#include "common/check.h"

namespace aladdin::core {

namespace {
template <typename T>
std::size_t Idx(T id) {
  return static_cast<std::size_t>(id.value());
}
}  // namespace

AggregatedNetwork::AggregatedNetwork(const cluster::Topology& topology)
    : topology_(&topology) {}

void AggregatedNetwork::Attach(cluster::ClusterState* state) {
  ALADDIN_CHECK(state != nullptr);
  ALADDIN_CHECK(&state->topology() == topology_);
  state_ = state;

  const std::size_t machines = topology_->machine_count();
  by_free_.clear();
  indexed_free_.assign(machines, 0);
  epoch_.assign(machines, 0);
  rack_free_.assign(topology_->rack_count(), {});
  subcluster_free_.assign(topology_->subcluster_count(), {});
  rack_max_.assign(topology_->rack_count(), 0);
  il_memo_.assign(state->applications().size(), {});
  il_bitset_.assign(state->applications().size(), {});

  // Build rack multisets first, then seed sub-cluster maxima.
  for (const auto& machine : topology_->machines()) {
    const std::int64_t free = state_->Free(machine.id).cpu_millis();
    indexed_free_[Idx(machine.id)] = free;
    by_free_.insert({free, machine.id.value()});
    rack_free_[Idx(machine.rack)].insert(free);
  }
  for (std::size_t r = 0; r < rack_free_.size(); ++r) {
    const auto& set = rack_free_[r];
    rack_max_[r] = set.empty() ? 0 : *set.rbegin();
    const auto g = topology_->RackSubCluster(
        cluster::RackId(static_cast<std::int32_t>(r)));
    subcluster_free_[Idx(g)].insert(rack_max_[r]);
  }
}

std::int64_t AggregatedNetwork::FreeCpu(cluster::MachineId m) const {
  return state_->Free(m).cpu_millis();
}

void AggregatedNetwork::Reindex(cluster::MachineId m) {
  const std::int64_t old_free = indexed_free_[Idx(m)];
  const std::int64_t new_free = FreeCpu(m);
  ++epoch_[Idx(m)];
  if (old_free == new_free) return;

  by_free_.erase({old_free, m.value()});
  by_free_.insert({new_free, m.value()});
  indexed_free_[Idx(m)] = new_free;

  const cluster::RackId rack = topology_->machine(m).rack;
  auto& rset = rack_free_[Idx(rack)];
  rset.erase(rset.find(old_free));
  rset.insert(new_free);
  const std::int64_t new_rack_max = rset.empty() ? 0 : *rset.rbegin();
  if (new_rack_max != rack_max_[Idx(rack)]) {
    const auto g = topology_->RackSubCluster(rack);
    auto& gset = subcluster_free_[Idx(g)];
    gset.erase(gset.find(rack_max_[Idx(rack)]));
    gset.insert(new_rack_max);
    rack_max_[Idx(rack)] = new_rack_max;
  }
}

void AggregatedNetwork::Deploy(cluster::ContainerId c, cluster::MachineId m) {
  state_->Deploy(c, m);
  Reindex(m);
}

void AggregatedNetwork::Evict(cluster::ContainerId c) {
  const cluster::MachineId m = state_->PlacementOf(c);
  state_->Evict(c);
  Reindex(m);
}

void AggregatedNetwork::Migrate(cluster::ContainerId c, cluster::MachineId to) {
  const cluster::MachineId from = state_->PlacementOf(c);
  state_->Migrate(c, to);
  Reindex(from);
  Reindex(to);
}

void AggregatedNetwork::Preempt(cluster::ContainerId c) {
  const cluster::MachineId m = state_->PlacementOf(c);
  state_->Preempt(c);
  Reindex(m);
}

bool AggregatedNetwork::IlPruned(cluster::ApplicationId app,
                                 cluster::MachineId m) const {
  const auto& bits = il_bitset_[Idx(app)];
  if (bits.empty() || !bits[Idx(m)]) return false;  // cheap common case
  const auto& memo = il_memo_[Idx(app)];
  const auto it = memo.find(m.value());
  return it != memo.end() && it->second == epoch_[Idx(m)];
}

void AggregatedNetwork::RecordIlFailure(cluster::ApplicationId app,
                                        cluster::MachineId m) {
  auto& bits = il_bitset_[Idx(app)];
  if (bits.empty()) bits.assign(topology_->machine_count(), false);
  bits[Idx(m)] = true;
  il_memo_[Idx(app)][m.value()] = epoch_[Idx(m)];
}

cluster::MachineId AggregatedNetwork::FindMachine(cluster::ContainerId c,
                                                  const SearchOptions& options,
                                                  SearchCounters& counters,
                                                  cluster::MachineId exclude) {
  ALADDIN_CHECK(state_ != nullptr);
  // DL changes the traversal (first saturating path wins); without it the
  // search enumerates every candidate path through the aggregates. Both
  // traversals return the same machine — the tightest admissible one.
  return options.enable_dl
             ? FindByBestFitWalk(c, options, counters, exclude)
             : FindByEnumeration(c, options, counters, exclude);
}

cluster::MachineId AggregatedNetwork::FindByEnumeration(
    cluster::ContainerId c, const SearchOptions& options,
    SearchCounters& counters, cluster::MachineId exclude) {
  const cluster::ApplicationId app = state_->containers()[Idx(c)].app;
  const std::int64_t need = state_->containers()[Idx(c)].request.cpu_millis();
  // IL exploits isomorphism between sibling containers; a single-container
  // application has no siblings, so the memo would be pure overhead.
  const bool use_il =
      options.enable_il &&
      state_->applications()[Idx(app)].containers.size() > 1;

  cluster::MachineId best = cluster::MachineId::Invalid();
  std::int64_t best_free = 0;
  // Walk A → G_k → R_x → N_y, pruning aggregates whose residual cannot
  // admit the request.
  for (std::size_t g = 0; g < subcluster_free_.size(); ++g) {
    ++counters.explored_paths;  // G vertex probe
    const auto& gset = subcluster_free_[g];
    if (gset.empty() || *gset.rbegin() < need) continue;
    for (cluster::RackId rack : topology_->SubClusterRacks(
             cluster::SubClusterId(static_cast<std::int32_t>(g)))) {
      ++counters.explored_paths;  // R vertex probe
      if (rack_max_[Idx(rack)] < need) continue;
      for (cluster::MachineId m : topology_->RackMachines(rack)) {
        if (m == exclude) continue;
        if (use_il && IlPruned(app, m)) {
          ++counters.il_prunes;
          continue;
        }
        ++counters.explored_paths;  // N vertex probe
        const CapacityCheck check = CapacityFunction::Evaluate(*state_, c, m);
        if (!check.Admits()) {
          // Memoise only blacklist rejections; fit rejections are cheaper
          // to recompute than to look up.
          if (use_il && check.blacklisted) RecordIlFailure(app, m);
          continue;
        }
        const std::int64_t free = indexed_free_[Idx(m)];
        if (!best.valid() || free < best_free ||
            (free == best_free && m < best)) {
          best = m;
          best_free = free;
        }
      }
    }
  }
  return best;
}

cluster::MachineId AggregatedNetwork::FindByBestFitWalk(
    cluster::ContainerId c, const SearchOptions& options,
    SearchCounters& counters, cluster::MachineId exclude) {
  const cluster::ApplicationId app = state_->containers()[Idx(c)].app;
  const std::int64_t need = state_->containers()[Idx(c)].request.cpu_millis();
  const bool use_il =
      options.enable_il &&
      state_->applications()[Idx(app)].containers.size() > 1;

  for (auto it = by_free_.lower_bound({need, -1}); it != by_free_.end();
       ++it) {
    const cluster::MachineId m(it->second);
    if (m == exclude) continue;
    if (use_il && IlPruned(app, m)) {
      ++counters.il_prunes;
      continue;
    }
    ++counters.explored_paths;
    const CapacityCheck check = CapacityFunction::Evaluate(*state_, c, m);
    if (check.Admits()) {
      // Depth limiting: this path saturates the container's s→T_i edge;
      // no further path can increase its flow (§IV.A, Fig. 5b).
      ++counters.dl_stops;
      return m;
    }
    if (use_il) RecordIlFailure(app, m);
  }
  return cluster::MachineId::Invalid();
}

void AggregatedNetwork::ScanDescending(
    int limit, const std::function<bool(cluster::MachineId)>& fn) const {
  int seen = 0;
  for (auto it = by_free_.rbegin(); it != by_free_.rend() && seen < limit;
       ++it, ++seen) {
    if (fn(cluster::MachineId(it->second))) return;
  }
}

void AggregatedNetwork::ScanAscending(
    std::int64_t min_free_cpu, int limit,
    const std::function<bool(cluster::MachineId)>& fn) const {
  int seen = 0;
  for (auto it = by_free_.lower_bound({min_free_cpu, -1});
       it != by_free_.end() && seen < limit; ++it, ++seen) {
    if (fn(cluster::MachineId(it->second))) return;
  }
}

}  // namespace aladdin::core

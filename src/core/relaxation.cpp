#include "core/relaxation.h"

#include <string>

#include "common/check.h"
#include "flow/max_flow.h"
#include "obs/trace.h"

namespace aladdin::core {

RelaxationNetwork BuildRelaxationNetwork(const trace::Workload& workload,
                                         const cluster::ClusterState& state) {
  ALADDIN_TRACE_SCOPE("core/relax_build");
  const cluster::Topology& topology = state.topology();
  RelaxationNetwork net;
  flow::Graph& g = net.graph;
  net.source = g.AddVertex();
  net.sink = g.AddVertex();

  // Application vertices A_j.
  const VertexId first_app =
      g.AddVertices(workload.application_count());
  net.first_app = first_app;
  // Sub-cluster vertices G_k and rack vertices R_x.
  const VertexId first_sub = g.AddVertices(topology.subcluster_count());
  const VertexId first_rack = g.AddVertices(topology.rack_count());
  // Machine vertices N_y.
  const VertexId first_machine = g.AddVertices(topology.machine_count());

  auto app_vx = [&](cluster::ApplicationId a) {
    return VertexId(first_app.value() + a.value());
  };
  auto sub_vx = [&](cluster::SubClusterId s) {
    return VertexId(first_sub.value() + s.value());
  };
  auto rack_vx = [&](cluster::RackId r) {
    return VertexId(first_rack.value() + r.value());
  };
  auto machine_vx = [&](cluster::MachineId m) {
    return VertexId(first_machine.value() + m.value());
  };

  // T_i vertices and s -> T_i -> A_j arcs for *unplaced* containers only.
  net.container_arcs.assign(workload.container_count(),
                            ArcId::Invalid());
  for (const auto& c : workload.containers()) {
    if (state.IsPlaced(c.id)) continue;
    const VertexId t = g.AddVertex();
    net.container_arcs[static_cast<std::size_t>(c.id.value())] =
        g.AddArc(net.source, t, c.request.cpu_millis());
    g.AddArc(t, app_vx(c.app), flow::kInfiniteCapacity);
  }
  // A_j -> G_k: every application may reach every sub-cluster (this is the
  // |A|·|G| <= |A|·|R| term of the paper's edge-count bound).
  for (const auto& app : workload.applications()) {
    for (std::size_t s = 0; s < topology.subcluster_count(); ++s) {
      g.AddArc(app_vx(app.id),
               sub_vx(cluster::SubClusterId(static_cast<std::int32_t>(s))),
               flow::kInfiniteCapacity);
    }
  }
  // G_k -> R_x along the physical topology.
  for (std::size_t s = 0; s < topology.subcluster_count(); ++s) {
    const cluster::SubClusterId sid(static_cast<std::int32_t>(s));
    for (cluster::RackId r : topology.SubClusterRacks(sid)) {
      g.AddArc(sub_vx(sid), rack_vx(r), flow::kInfiniteCapacity);
    }
  }
  // R_x -> N_y and N_y -> t (capacity = the machine's free CPU).
  net.machine_arcs.reserve(topology.machine_count());
  for (std::size_t r = 0; r < topology.rack_count(); ++r) {
    const cluster::RackId rid(static_cast<std::int32_t>(r));
    for (cluster::MachineId m : topology.RackMachines(rid)) {
      g.AddArc(rack_vx(rid), machine_vx(m), flow::kInfiniteCapacity);
    }
  }
  for (const auto& machine : topology.machines()) {
    net.machine_arcs.push_back(g.AddArc(machine_vx(machine.id), net.sink,
                                        state.Free(machine.id).cpu_millis()));
  }
  net.edge_count = g.arc_count() / 2;  // forward arcs only
  return net;
}

RelaxationBound SolveRelaxation(const trace::Workload& workload,
                                const cluster::ClusterState& state) {
  ALADDIN_TRACE_SCOPE("core/relax_solve");
  RelaxationNetwork net = BuildRelaxationNetwork(workload, state);
  RelaxationBound bound;
  bound.vertices = net.graph.vertex_count();
  bound.edges = net.edge_count;
  for (const auto& c : workload.containers()) {
    if (!state.IsPlaced(c.id)) {
      bound.demand_cpu_millis += c.request.cpu_millis();
    }
  }
  bound.placeable_cpu_millis =
      flow::Dinic(net.graph, net.source, net.sink).value;
  return bound;
}

RelaxationBound IncrementalRelaxation::Solve(
    const trace::Workload& workload, const cluster::ClusterState& state) {
  ALADDIN_TRACE_SCOPE("core/relax_solve");
  // The A_j fan-out is fixed at build time, so a changed application set
  // (or a different state object entirely) forces a rebuild; everything
  // else — free capacities, placements, appended containers — refreshes in
  // place.
  const bool reusable = built_ && state.instance_id() == state_instance_ &&
                        workload.application_count() == application_count_ &&
                        net_.machine_arcs.size() ==
                            state.topology().machine_count();
  reused_last_ = reusable;
  if (!reusable) {
    net_ = BuildRelaxationNetwork(workload, state);
    built_ = true;
    state_instance_ = state.instance_id();
    application_count_ = workload.application_count();
    app_vertex_base_ = net_.first_app.value();
    flow::Dinic(net_.graph, net_.source, net_.sink, ws_);
  } else {
    Refresh(workload, state);
    flow::Dinic(net_.graph, net_.source, net_.sink, ws_);  // warm start
  }

  RelaxationBound bound;
  bound.vertices = net_.graph.vertex_count();
  bound.edges = net_.edge_count;
  bound.placeable_cpu_millis = net_.graph.NetOutflow(net_.source);
  for (const auto& c : workload.containers()) {
    if (!state.IsPlaced(c.id)) {
      bound.demand_cpu_millis += c.request.cpu_millis();
    }
  }
  return bound;
}

void IncrementalRelaxation::Refresh(const trace::Workload& workload,
                                    const cluster::ClusterState& state) {
  flow::Graph& g = net_.graph;
  const cluster::Topology& topology = state.topology();

  // Machine and container retargets accumulate into one micro-batch and go
  // through flow::RefreshCapacities: each arc whose capacity moved keeps
  // the previous solve's flow as a warm start, cancelling only the excess
  // above its new capacity (the "cancel only invalidated arcs" rule).
  updates_.clear();

  // Machine arcs: free CPU moved.
  for (const auto& machine : topology.machines()) {
    const ArcId arc = net_.machine_arcs[static_cast<std::size_t>(
        machine.id.value())];
    const flow::Capacity want = state.Free(machine.id).cpu_millis();
    if (g.arc(arc).capacity != want) {
      updates_.push_back(flow::CapacityUpdate{arc, want});
    }
  }

  // Container arcs: placed containers close (capacity 0), evicted ones
  // re-open, brand-new ones get a T_i vertex wired in.
  net_.container_arcs.resize(workload.container_count(), ArcId::Invalid());
  for (const auto& c : workload.containers()) {
    const auto ci = static_cast<std::size_t>(c.id.value());
    const ArcId arc = net_.container_arcs[ci];
    const bool placed = state.IsPlaced(c.id);
    if (!arc.valid()) {
      if (placed) continue;  // placed at build time: still no vertex needed
      const VertexId t = g.AddVertex();
      net_.container_arcs[ci] =
          g.AddArc(net_.source, t, c.request.cpu_millis());
      g.AddArc(t, VertexId(app_vertex_base_ + c.app.value()),
               flow::kInfiniteCapacity);
      continue;
    }
    const flow::Capacity want = placed ? 0 : c.request.cpu_millis();
    if (g.arc(arc).capacity != want) {
      updates_.push_back(flow::CapacityUpdate{arc, want});
    }
  }
  flow::RefreshCapacities(g, updates_, net_.source, net_.sink, ws_);
  net_.edge_count = g.arc_count() / 2;

#if ALADDIN_DCHECK_IS_ON()
  const VertexId exempt[] = {net_.source, net_.sink};
  std::string error;
  ALADDIN_DCHECK(g.ValidateInvariants(exempt, &error))
      << "incremental refresh broke the relaxation network: " << error;
#endif
}

std::int64_t PlacedCpuMillis(const cluster::ClusterState& state) {
  std::int64_t total = 0;
  for (const auto& c : state.containers()) {
    if (state.IsPlaced(c.id)) total += c.request.cpu_millis();
  }
  return total;
}

}  // namespace aladdin::core

#include "core/sharded.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace aladdin::core {

namespace {

// FNV-1a over the application *name*: stable across processes and restarts
// (never hash addresses or construction-order-dependent ids — routing must
// be reproducible from the workload alone).
std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char ch : s) {
    h ^= ch;
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
std::size_t Idx(T id) {
  return static_cast<std::size_t>(id.value());
}

}  // namespace

const char* ShardRoutingName(ShardRouting routing) {
  switch (routing) {
    case ShardRouting::kHash:
      return "hash";
    case ShardRouting::kLeastUtilized:
      return "least-utilized";
    case ShardRouting::kConstraintDriven:
      return "constraint-driven";
    case ShardRouting::kCount:
      break;
  }
  return "?";
}

ShardRouting ShardRoutingFromName(const std::string& name) {
  for (int i = 0; i < static_cast<int>(ShardRouting::kCount); ++i) {
    const auto routing = static_cast<ShardRouting>(i);
    if (name == ShardRoutingName(routing)) return routing;
  }
  return ShardRouting::kCount;
}

ShardedScheduler::ShardedScheduler(ShardedOptions options)
    : options_(std::move(options)) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.rebalance_rounds < 0) options_.rebalance_rounds = 0;
  options_.aladdin.threads = 1;  // see ShardedOptions::aladdin
}

ShardedScheduler::~ShardedScheduler() = default;

std::string ShardedScheduler::name() const {
  return "Aladdin-sharded(" + std::to_string(options_.shards) + "x" +
         ShardRoutingName(options_.routing) + ")";
}

void ShardedScheduler::AttachShards(cluster::ClusterState& state) {
  plan_ = std::make_unique<cluster::ShardPlan>(
      cluster::ShardPlan::Build(state.topology(), options_.shards));
  const int k = plan_->shard_count();
  state.ConfigureDirtyScopes(plan_->scope_map(), k);
  shards_.clear();
  shards_.resize(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    ShardRuntime& rt = shards_[static_cast<std::size_t>(s)];
    rt.view = std::make_unique<cluster::ShardView>(*plan_, s, state);
    rt.solver = std::make_unique<AladdinScheduler>(options_.aladdin);
    // After MirrorAll, so the journal starts empty: mirror churn is input,
    // not scheduler output, and must never reach the merge diff.
    rt.view->state().EnableChangeJournal();
    rt.dirty_cursor = state.ScopedDirtyLogEnd(s);
    rt.migrations_mark = rt.view->state().migrations();
    rt.preemptions_mark = rt.view->state().preemptions();
    if (k > 1) {
      // Interned once per attach; the K = 1 run registers nothing so its
      // exported counter set stays identical to the unsharded scheduler's.
      const std::string prefix = "core/shard" + std::to_string(s);
      obs::Registry& registry = obs::Registry::Get();
      rt.routed_counter = &registry.GetCounter(prefix + "/routed");
      rt.placed_counter = &registry.GetCounter(prefix + "/placed");
      rt.solve_phase = &registry.GetPhase(prefix + "/solve");
    }
  }
  attached_state_id_ = state.instance_id();
  home_shard_.clear();
}

void ShardedScheduler::SyncShards(cluster::ClusterState& state) {
  for (ShardRuntime& rt : shards_) rt.view->state().SyncWorkloadGrowth();
  const int k = plan_->shard_count();
  for (int s = 0; s < k; ++s) {
    ShardRuntime& rt = shards_[static_cast<std::size_t>(s)];
    bool overflowed = false;
    const std::span<const cluster::MachineId> dirty =
        state.ScopedDirtySince(s, rt.dirty_cursor, &overflowed);
    if (overflowed) {
      // Only this shard rebuilds; the other shards' warm mirrors (and their
      // solvers' incremental networks) are untouched — the point of the
      // per-scope logs.
      rt.view->MirrorAll(state);
    } else {
      for (const cluster::MachineId m : dirty) rt.view->MirrorMachine(state, m);
    }
    rt.dirty_cursor = state.ScopedDirtyLogEnd(s);
    (void)rt.view->state().TakeChangedContainers();  // drop mirror churn
  }
}

std::size_t ShardedScheduler::EligibleMachines(
    int s, cluster::ContainerId container) const {
  const cluster::ClusterState& st =
      shards_[static_cast<std::size_t>(s)].view->state();
  const std::size_t machines = st.topology().machine_count();
  std::size_t eligible = 0;
  for (std::size_t m = 0; m < machines; ++m) {
    if (!st.Blacklisted(container,
                        cluster::MachineId(static_cast<std::int32_t>(m)))) {
      ++eligible;
    }
  }
  return eligible;
}

bool ShardedScheduler::HasEligibleMachine(int s,
                                          cluster::ContainerId container) const {
  const cluster::ClusterState& st =
      shards_[static_cast<std::size_t>(s)].view->state();
  const std::size_t machines = st.topology().machine_count();
  for (std::size_t m = 0; m < machines; ++m) {
    if (!st.Blacklisted(container,
                        cluster::MachineId(static_cast<std::int32_t>(m)))) {
      return true;
    }
  }
  return false;
}

void ShardedScheduler::RouteRound(const cluster::ClusterState& state,
                                  const std::vector<Pending>& pending,
                                  int round, std::vector<Pending>& given_up) {
  const int k = plan_->shard_count();
  const std::vector<cluster::Container>& containers = state.containers();
  const std::vector<cluster::Application>& applications = state.applications();
  const cluster::ConstraintSet& constraints = state.constraints();

  if (app_slot_.size() < applications.size()) {
    app_slot_.resize(applications.size(), -1);
    app_tried_.resize(applications.size(), 0);
    home_shard_.resize(applications.size(), -1);
  }

  // Group by application, preserving first-arrival order of the apps.
  round_apps_.clear();
  for (const Pending& p : pending) {
    const cluster::ApplicationId app = containers[Idx(p.container)].app;
    std::int32_t slot = app_slot_[Idx(app)];
    if (slot < 0) {
      slot = static_cast<std::int32_t>(round_apps_.size());
      app_slot_[Idx(app)] = slot;
      RoundApp ra;
      ra.app = app;
      ra.probe = p.container;
      ra.constrained = constraints.HasWithinAntiAffinity(app) ||
                       !constraints.ConflictsOf(app).empty();
      round_apps_.push_back(ra);
    }
    ++round_apps_[static_cast<std::size_t>(slot)].count;
  }

  // Per-shard free CPU, reservation-adjusted as groups are assigned so one
  // big tick spreads instead of dog-piling the momentarily-emptiest shard.
  for (ShardRuntime& rt : shards_) {
    const cluster::ClusterState& st = rt.view->state();
    const std::size_t machines = st.topology().machine_count();
    std::int64_t free = 0;
    for (std::size_t m = 0; m < machines; ++m) {
      free += st.Free(cluster::MachineId(static_cast<std::int32_t>(m)))
                  .cpu_millis();
    }
    rt.free_cpu = free;
  }

  const auto argmax_free_cpu = [&](std::uint64_t tried) {
    int best = -1;
    std::int64_t best_free = 0;
    for (int s = 0; s < k; ++s) {
      if (s < 64 && ((tried >> s) & 1U) != 0) continue;
      const std::int64_t free = shards_[static_cast<std::size_t>(s)].free_cpu;
      if (best < 0 || free > best_free) {
        best = s;
        best_free = free;
      }
    }
    return best;
  };
  const auto argmax_eligible = [&](cluster::ContainerId probe,
                                   std::uint64_t tried) {
    int best = -1;
    std::size_t best_count = 0;
    for (int s = 0; s < k; ++s) {
      if (s < 64 && ((tried >> s) & 1U) != 0) continue;
      const std::size_t eligible = EligibleMachines(s, probe);
      if (best < 0 || eligible > best_count) {
        best = s;
        best_count = eligible;
      }
    }
    return best;
  };

  for (RoundApp& ra : round_apps_) {
    tick_touched_.push_back(ra.app);
    const std::uint64_t tried = app_tried_[Idx(ra.app)];
    int target = -1;
    if (round == 0) {
      const std::int32_t home = home_shard_[Idx(ra.app)];
      if (home >= 0 && home < k) {
        target = home;
      } else {
        switch (options_.routing) {
          case ShardRouting::kHash:
            target = static_cast<int>(
                Fnv1a(applications[Idx(ra.app)].name) %
                static_cast<std::uint64_t>(k));
            break;
          case ShardRouting::kLeastUtilized:
            target = argmax_free_cpu(0);
            break;
          case ShardRouting::kConstraintDriven:
            target = ra.constrained ? argmax_eligible(ra.probe, 0)
                                    : argmax_free_cpu(0);
            break;
          case ShardRouting::kCount:
            target = 0;
            break;
        }
      }
      // Blacklist-exchange veto, any policy: a shard reporting zero
      // eligible machines for this app cannot place a single container —
      // reroute to the shard with the most eligible machines instead of
      // burning a solve on a dead shard. (If every shard reports zero, the
      // chosen solver runs anyway and diagnoses the anti-affinity cause.)
      if (ra.constrained && k > 1 && target >= 0 &&
          !HasEligibleMachine(target, ra.probe)) {
        target = argmax_eligible(ra.probe, 0);
      }
    } else {
      // Spill: best shard this app has not tried this tick.
      target = ra.constrained ? argmax_eligible(ra.probe, tried)
                              : argmax_free_cpu(tried);
    }
    ra.target = target;
    if (target < 0) continue;  // no shard left to try
    if (target < 64) app_tried_[Idx(ra.app)] |= (1ULL << target);
    if (round == 0 && home_shard_[Idx(ra.app)] < 0) {
      home_shard_[Idx(ra.app)] = static_cast<std::int32_t>(target);
    }
    ShardRuntime& rt = shards_[static_cast<std::size_t>(target)];
    rt.free_cpu -= applications[Idx(ra.app)].request.cpu_millis() *
                   static_cast<std::int64_t>(ra.count);
    rt.stats.routed += ra.count;
    if (round > 0) rt.stats.spilled += ra.count;
    if (rt.routed_counter != nullptr) {
      rt.routed_counter->Add(static_cast<std::int64_t>(ra.count));
    }
  }

  // Second pass: append containers in their original arrival order, so each
  // shard's queue preserves relative submission order (and the K = 1 queue
  // is exactly the unsharded one). Runs serial on the coordinator, so the
  // routed/spilled hop events below take global journal sequence numbers in
  // arrival order — gated on K > 1 to keep the K = 1 stream byte-identical
  // to the unsharded scheduler's.
  const bool journal_hops = plan_->shard_count() > 1 && obs::JournalEnabled();
  for (const Pending& p : pending) {
    const cluster::ApplicationId app = containers[Idx(p.container)].app;
    const RoundApp& ra =
        round_apps_[static_cast<std::size_t>(app_slot_[Idx(app)])];
    if (ra.target < 0) {
      given_up.push_back(p);
    } else {
      shards_[static_cast<std::size_t>(ra.target)].round_arrivals.push_back(
          p.container);
      if (journal_hops) {
        obs::EmitDecision(obs::DecisionKind::kEvent,
                          round == 0 ? obs::Cause::kShardRouted
                                     : obs::Cause::kShardSpilled,
                          p.container.value(), /*machine=*/-1,
                          /*other=*/ra.target, /*detail=*/round);
      }
    }
  }
  for (const RoundApp& ra : round_apps_) app_slot_[Idx(ra.app)] = -1;
}

ThreadPool* ShardedScheduler::SolvePool() {
  if (options_.threads == 1 || plan_->shard_count() <= 1) return nullptr;
  if (!pool_created_) {
    pool_created_ = true;
    pool_ = std::make_unique<ThreadPool>(
        options_.threads == 0 ? 0 : static_cast<std::size_t>(options_.threads));
  }
  return pool_.get();
}

void ShardedScheduler::SolveAndMerge(const sim::ScheduleRequest& request,
                                     cluster::ClusterState& state,
                                     sim::ScheduleOutcome& outcome,
                                     std::vector<Pending>& pending) {
  const int k = plan_->shard_count();
  pending.clear();

  const auto solve_shard = [&](std::size_t s) {
    ShardRuntime& rt = shards_[s];
    if (rt.round_arrivals.empty()) return;
    // Park journal emissions per shard: no global sequence numbers are
    // assigned on worker threads; the merge below replays every buffer in
    // fixed shard order from this (serial) coordinator thread.
    obs::ScopedDecisionCapture capture(
        &rt.journal, k > 1 ? static_cast<std::int32_t>(s) : -1);
    WallTimer timer;
    sim::ScheduleRequest shard_request;
    shard_request.workload = request.workload;
    shard_request.arrival = &rt.round_arrivals;
    rt.outcome = rt.solver->Schedule(shard_request, rt.view->state());
    const double seconds = timer.ElapsedSeconds();
    rt.stats.solve_seconds += seconds;
    if (rt.solve_phase != nullptr && obs::MetricsEnabled()) {
      rt.solve_phase->RecordUnchecked(
          static_cast<std::int64_t>(seconds * 1e9));
    }
  };

  {
    ALADDIN_TRACE_SCOPE("core/shard_solve");
    ThreadPool* pool = SolvePool();
    if (pool == nullptr) {
      SerialFor(0, static_cast<std::size_t>(k), solve_shard);
    } else {
      ParallelFor(*pool, 0, static_cast<std::size_t>(k), solve_shard);
    }
  }

  ALADDIN_TRACE_SCOPE("core/shard_merge");
  for (int s = 0; s < k; ++s) {
    ShardRuntime& rt = shards_[static_cast<std::size_t>(s)];
    if (rt.round_arrivals.empty()) continue;
    cluster::ShardView& view = *rt.view;
    cluster::ClusterState& shard_state = view.state();

    // Journal replay, machine ids translated local → global. `machine` is a
    // machine for every kind that sets it; `other` is a machine only for
    // migrations (it is the aggressor *container* for preemptions).
    if (!rt.journal.empty()) {
      for (obs::Decision& decision : rt.journal) {
        if (decision.machine >= 0) {
          decision.machine =
              view.ToGlobal(cluster::MachineId(decision.machine)).value();
        }
        if (decision.kind == obs::DecisionKind::kMigrate &&
            decision.other >= 0) {
          decision.other =
              view.ToGlobal(cluster::MachineId(decision.other)).value();
        }
      }
      obs::EmitCapturedDecisions(rt.journal);
      rt.journal.clear();
    }

    // Placement diff: the shard's change journal lists every container the
    // solver touched, in first-touch order; transferring exactly the net
    // placement delta keeps the global state byte-equivalent to having run
    // the solver on it directly. Evictions land first — a machine's
    // remaining residents are then a subset of its final residents, so
    // every Deploy fits no matter how the solver chained its migrations.
    merge_scratch_ = shard_state.TakeChangedContainers();
    for (const cluster::ContainerId c : merge_scratch_) {
      const cluster::MachineId local = shard_state.PlacementOf(c);
      const cluster::MachineId target =
          local.valid() ? view.ToGlobal(local) : cluster::MachineId::Invalid();
      const cluster::MachineId have = state.PlacementOf(c);
      if (have.valid() && have != target) state.Evict(c);
    }
    for (const cluster::ContainerId c : merge_scratch_) {
      const cluster::MachineId local = shard_state.PlacementOf(c);
      if (!local.valid()) continue;
      const cluster::MachineId target = view.ToGlobal(local);
      if (state.PlacementOf(c) != target) state.Deploy(c, target);
    }
    // The raw Evict/Deploy transfer above is uncounted; fold the shard
    // solver's own migration/preemption tallies instead.
    state.RecordMigrations(shard_state.migrations() - rt.migrations_mark);
    state.RecordPreemptions(shard_state.preemptions() - rt.preemptions_mark);
    rt.migrations_mark = shard_state.migrations();
    rt.preemptions_mark = shard_state.preemptions();

    outcome.explored_paths += rt.outcome.explored_paths;
    outcome.rounds += rt.outcome.rounds;
    outcome.il_prunes += rt.outcome.il_prunes;
    outcome.dl_stops += rt.outcome.dl_stops;

    const std::size_t placed =
        rt.round_arrivals.size() >= rt.outcome.unplaced.size()
            ? rt.round_arrivals.size() - rt.outcome.unplaced.size()
            : 0;
    rt.stats.placed += placed;
    if (rt.placed_counter != nullptr) {
      rt.placed_counter->Add(static_cast<std::int64_t>(placed));
    }
    for (std::size_t i = 0; i < rt.outcome.unplaced.size(); ++i) {
      pending.push_back(
          Pending{rt.outcome.unplaced[i],
                  i < rt.outcome.unplaced_causes.size()
                      ? rt.outcome.unplaced_causes[i]
                      : obs::Cause::kNoAdmissiblePath,
                  s});
    }

    // This merge only dirtied scope-s machines (the solver touches shard
    // machines exclusively), so advancing the cursor here skips replaying
    // our own writes next tick without missing anyone else's.
    rt.dirty_cursor = state.ScopedDirtyLogEnd(s);
    rt.round_arrivals.clear();
  }
}

sim::ScheduleOutcome ShardedScheduler::Schedule(
    const sim::ScheduleRequest& request, cluster::ClusterState& state) {
  sim::ScheduleOutcome outcome;
  const std::vector<obs::PhaseDelta> phases_before =
      obs::MetricsEnabled() ? obs::CapturePhases()
                            : std::vector<obs::PhaseDelta>{};

  {
    ALADDIN_TRACE_SCOPE("core/shard_sync");
    if (plan_ == nullptr || attached_state_id_ != state.instance_id()) {
      AttachShards(state);
    } else {
      SyncShards(state);
    }
  }

  const int k = plan_->shard_count();
  for (int s = 0; s < k; ++s) {
    ShardRuntime& rt = shards_[static_cast<std::size_t>(s)];
    rt.stats = ShardTickStats{};
    rt.stats.shard = s;
    rt.stats.machines = plan_->shard_machines(s).size();
  }

  pending_.clear();
  given_up_.clear();
  pending_.reserve(request.arrival->size());
  for (const cluster::ContainerId c : *request.arrival) {
    pending_.push_back(Pending{c, obs::Cause::kNone, -1});
  }

  const int max_rounds = 1 + (k > 1 ? options_.rebalance_rounds : 0);
  for (int round = 0; round < max_rounds && !pending_.empty(); ++round) {
    {
      ALADDIN_TRACE_SCOPE("core/shard_route");
      RouteRound(state, pending_, round, given_up_);
    }
    SolveAndMerge(request, state, outcome, pending_);
    if (round > 0 && !round_apps_.empty()) {
      // Re-home applications whose spill fully landed: their next waves go
      // straight to the shard that actually had room.
      std::unordered_set<std::int32_t> failed_apps;
      for (const Pending& p : pending_) {
        failed_apps.insert(state.containers()[Idx(p.container)].app.value());
      }
      for (const RoundApp& ra : round_apps_) {
        if (ra.target >= 0 && !failed_apps.contains(ra.app.value())) {
          home_shard_[Idx(ra.app)] = static_cast<std::int32_t>(ra.target);
        }
      }
    }
  }
  for (const Pending& p : pending_) given_up_.push_back(p);
  pending_.clear();

  outcome.unplaced.reserve(given_up_.size());
  outcome.unplaced_causes.reserve(given_up_.size());
  for (const Pending& p : given_up_) {
    outcome.unplaced.push_back(p.container);
    outcome.unplaced_causes.push_back(
        p.cause == obs::Cause::kNone ? obs::Cause::kNoAdmissiblePath : p.cause);
    if (p.last_shard >= 0) {
      ++shards_[static_cast<std::size_t>(p.last_shard)].stats.unplaced;
    }
  }

  for (const cluster::ApplicationId app : tick_touched_) {
    app_tried_[Idx(app)] = 0;
  }
  tick_touched_.clear();

  // End-of-tick cpu occupancy per shard (exact integers, from the merged
  // shard views) — the imbalance-detector input. One pass over each
  // shard's machine span, serial on the coordinator.
  for (int s = 0; s < k; ++s) {
    ShardRuntime& rt = shards_[static_cast<std::size_t>(s)];
    const cluster::ClusterState& st = rt.view->state();
    const std::size_t machines = st.topology().machine_count();
    std::int64_t free = 0;
    std::int64_t capacity = 0;
    for (std::size_t m = 0; m < machines; ++m) {
      const cluster::MachineId machine(static_cast<std::int32_t>(m));
      free += st.Free(machine).cpu_millis();
      capacity += st.topology().machine(machine).capacity.cpu_millis();
    }
    rt.stats.free_cpu_millis = free;
    rt.stats.capacity_cpu_millis = capacity;
  }

  last_shard_stats_.clear();
  last_shard_stats_.reserve(static_cast<std::size_t>(k));
  for (int s = 0; s < k; ++s) {
    last_shard_stats_.push_back(shards_[static_cast<std::size_t>(s)].stats);
  }

  if (obs::MetricsEnabled()) {
    outcome.phases = obs::DiffPhases(phases_before, obs::CapturePhases());
  }
  return outcome;
}

std::vector<sim::ScheduleOutcome> ShardedScheduler::ScheduleBatch(
    std::span<const sim::ScheduleRequest> requests,
    cluster::ClusterState& state) {
  // analyze:allow(A102) per-batch output that escapes the solve
  std::vector<sim::ScheduleOutcome> outcomes;
  outcomes.reserve(requests.size());  // analyze:allow(A103) per-batch output
  for (std::size_t r = 0; r < requests.size(); ++r) {
    outcomes.push_back(Schedule(requests[r], state));
    if (obs::JournalEnabled()) {
      obs::EmitDecision(obs::DecisionKind::kEvent,
                        obs::Cause::kBatchScheduled, -1,
                        static_cast<std::int32_t>(r), -1,
                        static_cast<std::int64_t>(
                            requests[r].arrival->size()));
    }
  }
  return outcomes;
}

}  // namespace aladdin::core

// The "traditional task-based scheduler" for short-lived containers
// (§IV.D: "Aladdin also uses a traditional task-based scheduler for
// short-lived containers").
//
// Short-lived batch tasks have no LLA constraints and live for minutes, so
// they skip the flow machinery entirely: a single pass in queue order,
// placing each task by a simple packing policy over raw resources. The
// scheduler implements sim::Scheduler (usable standalone for batch-only
// clusters) and exposes PlaceOne for embedders that interleave task
// placement with LLA scheduling (the k8s resolver).
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "cluster/free_index.h"
#include "sim/scheduler.h"

namespace aladdin::core {

enum class TaskPlacementPolicy {
  kBestFit,   // tightest machine that fits (packs; the default)
  kWorstFit,  // emptiest machine (spreads, leaves big holes intact)
  kFirstFit,  // lowest machine id that fits (classic queue scheduler)
};

const char* TaskPlacementPolicyName(TaskPlacementPolicy policy);

struct TaskSchedulerOptions {
  TaskPlacementPolicy policy = TaskPlacementPolicy::kBestFit;
};

class TaskScheduler : public sim::Scheduler {
 public:
  explicit TaskScheduler(TaskSchedulerOptions options = {});

  [[nodiscard]] std::string name() const override;

  sim::ScheduleOutcome Schedule(const sim::ScheduleRequest& request,
                                cluster::ClusterState& state) override;

  // Places one task against an externally maintained index; returns the
  // machine used (Invalid if nothing fits). Updates state and index.
  static cluster::MachineId PlaceOne(cluster::ClusterState& state,
                                     cluster::FreeIndex& index,
                                     cluster::ContainerId task,
                                     TaskPlacementPolicy policy);

  // Best-fit run placer (ISSUE 9): places a run of tasks with identical
  // resource requests, bit-identically to calling PlaceOne(kBestFit) per
  // task but without the per-task rescan. The current winner absorbs tasks
  // while the request keeps fitting (deferring its index re-key); when it
  // stops fitting the scan resumes strictly after the winner's discovery
  // key (FreeIndex::ScanAscendingFrom) — every earlier key is a machine
  // that already rejected this request shape and is unchanged, or an
  // exhausted ex-winner re-keyed below its discovery position. Once a
  // resumed scan comes up empty, all remaining tasks are unplaced (state
  // unchanged, so a serial rescan would fail identically). out[i] receives
  // the machine for tasks[i] (Invalid when unplaced); failures form a
  // suffix. Returns the number placed. Requires tasks.size() == out.size()
  // and all tasks unplaced with equal request vectors.
  static std::size_t PlaceRun(cluster::ClusterState& state,
                              cluster::FreeIndex& index,
                              std::span<const cluster::ContainerId> tasks,
                              std::span<cluster::MachineId> out);

 private:
  TaskSchedulerOptions options_;
};

}  // namespace aladdin::core

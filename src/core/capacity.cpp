#include "core/capacity.h"

// Header-only logic; TU anchors the header in the core library.
namespace aladdin::core {}

#include "core/task_scheduler.h"

#include "common/analysis.h"
#include "common/check.h"
#include "obs/trace.h"

namespace aladdin::core {

const char* TaskPlacementPolicyName(TaskPlacementPolicy policy) {
  switch (policy) {
    case TaskPlacementPolicy::kBestFit:
      return "best-fit";
    case TaskPlacementPolicy::kWorstFit:
      return "worst-fit";
    case TaskPlacementPolicy::kFirstFit:
      return "first-fit";
  }
  return "?";
}

TaskScheduler::TaskScheduler(TaskSchedulerOptions options)
    : options_(options) {}

std::string TaskScheduler::name() const {
  return std::string("TaskScheduler(") +
         TaskPlacementPolicyName(options_.policy) + ")";
}

cluster::MachineId TaskScheduler::PlaceOne(cluster::ClusterState& state,
                                           cluster::FreeIndex& index,
                                           cluster::ContainerId task,
                                           TaskPlacementPolicy policy) {
  const auto& request =
      state.containers()[static_cast<std::size_t>(task.value())].request;
  cluster::MachineId target = cluster::MachineId::Invalid();
  switch (policy) {
    case TaskPlacementPolicy::kBestFit:
      index.ScanAscending(request.cpu_millis(), [&](cluster::MachineId m) {
        if (!request.FitsIn(state.Free(m))) return false;
        target = m;
        return true;
      });
      break;
    case TaskPlacementPolicy::kWorstFit:
      index.ScanDescending([&](cluster::MachineId m) {
        // The emptiest machine either fits or nothing does.
        if (request.FitsIn(state.Free(m))) target = m;
        return true;
      });
      break;
    case TaskPlacementPolicy::kFirstFit: {
      const auto machine_count = state.topology().machine_count();
      for (std::size_t mi = 0; mi < machine_count; ++mi) {
        const cluster::MachineId m(static_cast<std::int32_t>(mi));
        if (request.FitsIn(state.Free(m))) {
          target = m;
          break;
        }
      }
      break;
    }
  }
  if (target.valid()) {
    state.Deploy(task, target);
    index.OnChanged(target);
    ALADDIN_METRIC_ADD("core/task_placed", 1);
  }
  return target;
}

ALADDIN_HOT std::size_t TaskScheduler::PlaceRun(
    cluster::ClusterState& state, cluster::FreeIndex& index,
    std::span<const cluster::ContainerId> tasks,
    std::span<cluster::MachineId> out) {
  ALADDIN_DCHECK(tasks.size() == out.size())
      << "PlaceRun out span must match the run";
  if (tasks.empty()) return 0;
  const auto& request =
      state.containers()[static_cast<std::size_t>(tasks[0].value())].request;
#if ALADDIN_DCHECK_IS_ON()
  for (cluster::ContainerId task : tasks) {
    ALADDIN_DCHECK(!state.IsPlaced(task)) << "PlaceRun task already placed";
    ALADDIN_DCHECK(
        state.containers()[static_cast<std::size_t>(task.value())].request ==
        request)
        << "PlaceRun requires identical requests across the run";
  }
#endif
  std::size_t placed = 0;
  cluster::MachineId winner = cluster::MachineId::Invalid();
  // Key under which the current winner was discovered in the index; the
  // resume point when it stops fitting.
  std::int64_t discovery_free = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!winner.valid() || !request.FitsIn(state.Free(winner))) {
      cluster::MachineId next = cluster::MachineId::Invalid();
      auto probe = [&](cluster::MachineId m) {
        if (!request.FitsIn(state.Free(m))) return false;
        next = m;
        return true;
      };
      if (winner.valid()) {
        index.OnChanged(winner);
        index.ScanAscendingFrom(discovery_free, winner.value(), probe);
      } else {
        index.ScanAscending(request.cpu_millis(), probe);
      }
      if (!next.valid()) {
        // Nothing fits and no task below mutates state, so every remaining
        // task would fail the identical scan: the failures are a suffix.
        for (std::size_t k = i; k < tasks.size(); ++k) {
          out[k] = cluster::MachineId::Invalid();
        }
        winner = cluster::MachineId::Invalid();  // already re-keyed above
        break;
      }
      winner = next;
      // The index was in sync for `next` (only winners were deployed to,
      // and each was re-keyed before its scan resumed), so its live free
      // CPU is its indexed key.
      discovery_free = state.Free(winner).cpu_millis();
    }
    state.Deploy(tasks[i], winner);
    out[i] = winner;
    ++placed;
  }
  if (winner.valid()) index.OnChanged(winner);
  if (placed > 0) {
    ALADDIN_METRIC_ADD("core/task_placed", placed);
  }
  return placed;
}

sim::ScheduleOutcome TaskScheduler::Schedule(
    const sim::ScheduleRequest& request, cluster::ClusterState& state) {
  sim::ScheduleOutcome outcome;
  cluster::FreeIndex index;
  index.Attach(state);
  for (cluster::ContainerId task : *request.arrival) {
    ++outcome.explored_paths;
    if (!PlaceOne(state, index, task, options_.policy).valid()) {
      outcome.unplaced.push_back(task);
    }
  }
  outcome.rounds = 1;
  return outcome;
}

}  // namespace aladdin::core

#include "core/task_scheduler.h"

#include "obs/trace.h"

namespace aladdin::core {

const char* TaskPlacementPolicyName(TaskPlacementPolicy policy) {
  switch (policy) {
    case TaskPlacementPolicy::kBestFit:
      return "best-fit";
    case TaskPlacementPolicy::kWorstFit:
      return "worst-fit";
    case TaskPlacementPolicy::kFirstFit:
      return "first-fit";
  }
  return "?";
}

TaskScheduler::TaskScheduler(TaskSchedulerOptions options)
    : options_(options) {}

std::string TaskScheduler::name() const {
  return std::string("TaskScheduler(") +
         TaskPlacementPolicyName(options_.policy) + ")";
}

cluster::MachineId TaskScheduler::PlaceOne(cluster::ClusterState& state,
                                           cluster::FreeIndex& index,
                                           cluster::ContainerId task,
                                           TaskPlacementPolicy policy) {
  const auto& request =
      state.containers()[static_cast<std::size_t>(task.value())].request;
  cluster::MachineId target = cluster::MachineId::Invalid();
  switch (policy) {
    case TaskPlacementPolicy::kBestFit:
      index.ScanAscending(request.cpu_millis(), [&](cluster::MachineId m) {
        if (!request.FitsIn(state.Free(m))) return false;
        target = m;
        return true;
      });
      break;
    case TaskPlacementPolicy::kWorstFit:
      index.ScanDescending([&](cluster::MachineId m) {
        // The emptiest machine either fits or nothing does.
        if (request.FitsIn(state.Free(m))) target = m;
        return true;
      });
      break;
    case TaskPlacementPolicy::kFirstFit: {
      const auto machine_count = state.topology().machine_count();
      for (std::size_t mi = 0; mi < machine_count; ++mi) {
        const cluster::MachineId m(static_cast<std::int32_t>(mi));
        if (request.FitsIn(state.Free(m))) {
          target = m;
          break;
        }
      }
      break;
    }
  }
  if (target.valid()) {
    state.Deploy(task, target);
    index.OnChanged(target);
    ALADDIN_METRIC_ADD("core/task_placed", 1);
  }
  return target;
}

sim::ScheduleOutcome TaskScheduler::Schedule(
    const sim::ScheduleRequest& request, cluster::ClusterState& state) {
  sim::ScheduleOutcome outcome;
  cluster::FreeIndex index;
  index.Attach(state);
  for (cluster::ContainerId task : *request.arrival) {
    ++outcome.explored_paths;
    if (!PlaceOne(state, index, task, options_.policy).valid()) {
      outcome.unplaced.push_back(task);
    }
  }
  outcome.rounds = 1;
  return outcome;
}

}  // namespace aladdin::core

#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "cluster/audit.h"
#include "common/analysis.h"
#include "common/check.h"
#include "common/log.h"
#include "obs/journal.h"
#include "obs/trace.h"

namespace aladdin::core {

namespace {

#if ALADDIN_DCHECK_IS_ON()
// Post-solve cross-check (compiled out in Release): the placements Aladdin
// emitted must survive the independent auditor. Medea-style schedulers may
// knowingly violate anti-affinity, Aladdin never does — so any colocation
// violation not already present when Schedule() started is a scheduler bug,
// as is any bookkeeping drift in the ClusterState it mutated.
void CrossCheckOutcome(const cluster::ClusterState& state,
                       const sim::ScheduleOutcome& outcome,
                       std::span<const cluster::ContainerId> pre_existing) {
  std::string error;
  ALADDIN_CHECK(state.CheckConsistency(&error))
      << "post-solve cluster state corrupt: " << error;
  for (cluster::ContainerId c : outcome.unplaced) {
    ALADDIN_CHECK(!state.IsPlaced(c))
        << "container " << c << " reported unplaced but deployed on "
        << state.PlacementOf(c);
  }
  const std::vector<cluster::ContainerId> offenders =
      cluster::CollectColocationViolations(state);
  for (cluster::ContainerId c : offenders) {
    ALADDIN_CHECK(std::find(pre_existing.begin(), pre_existing.end(), c) !=
                  pre_existing.end())
        << "scheduler-caused colocation violation: container " << c << " on "
        << state.PlacementOf(c);
  }
}
#endif

}  // namespace

AladdinScheduler::AladdinScheduler(AladdinOptions options)
    : options_(options) {}

ThreadPool* AladdinScheduler::SearchPool() {
  if (!pool_created_) {
    pool_created_ = true;
    const std::size_t want =
        options_.threads == 0
            ? std::max<std::size_t>(std::thread::hardware_concurrency(), 1)
            : static_cast<std::size_t>(std::max(options_.threads, 1));
    // A one-worker pool would serialise through the queue for nothing.
    // analyze:allow(A101) pool constructed once, then reused for the run
    if (want > 1) pool_ = std::make_unique<ThreadPool>(want);
  }
  return pool_.get();
}

AggregatedNetwork& AladdinScheduler::PrepareNetwork(
    cluster::ClusterState& state) {
  // Reuse requires the cached network to be attached to this very state
  // object: same address AND same instance id (stack/optional storage gets
  // recycled, so an address match alone could alias a dead state), with the
  // bound topology unchanged in size.
  const bool reusable =
      options_.incremental_network && network_ != nullptr &&
      network_->state() == &state &&
      attached_state_id_ == state.instance_id();
  if (reusable) {
    network_->Sync();
    return *network_;
  }
  network_ = std::make_unique<AggregatedNetwork>(state.topology());
  network_->Attach(&state);
  attached_state_id_ = state.instance_id();
  return *network_;
}

std::string AladdinScheduler::name() const {
  std::string n = "Aladdin";
  if (options_.weight_base > 0) {
    n += "(" + std::to_string(options_.weight_base) + ")";
  }
  if (options_.enable_il) n += "+IL";
  if (options_.enable_dl) n += "+DL";
  return n;
}

void AladdinScheduler::PrepareWeights(const trace::Workload& workload) {
  // Fingerprint everything the weight derivation (and the Eq. 5 audit)
  // reads: per-app priority, per-container request CPU and replica count,
  // plus the knob itself. Content-hashing (FNV-1a) rather than caching on
  // the workload address alone means a recycled address can never serve
  // stale weights. Applications are append-only while a workload is live,
  // so the common steady-state tick hashes a few thousand small ints —
  // orders cheaper than re-deriving class ranges and re-auditing Eq. 5.
  std::uint64_t fp = 1469598103934665603ull;
  const auto mix = [&fp](std::uint64_t v) {
    fp ^= v;
    fp *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(options_.weight_base));
  mix(static_cast<std::uint64_t>(workload.container_count()));
  for (const cluster::Application& app : workload.applications()) {
    mix(static_cast<std::uint64_t>(app.priority));
    mix(static_cast<std::uint64_t>(app.request.cpu_millis()));
    mix(static_cast<std::uint64_t>(app.containers.size()));
  }
  if (weights_ready_ && fp == weights_fingerprint_) {
    ALADDIN_METRIC_ADD("core/weights_cached", 1);
    return;
  }
  // Eq. 3–5: priority weights. The evaluation's knob is a geometric base;
  // base 0 derives the minimal valid weights from the workload itself.
  ALADDIN_PHASE_SCOPE("core/weights");
  weights_ = options_.weight_base > 0
                 ? MakeGeometricWeights(cluster::kPriorityClasses,
                                        options_.weight_base)
                 : ComputeMinimalWeights(workload);
  if (!SatisfiesEq5(weights_, workload)) {
    LOG_WARN << name() << ": weights violate Eq. 5 for this workload; "
             << "priority safety of preemption is not guaranteed";
  }
  weights_fingerprint_ = fp;
  weights_ready_ = true;
}

ALADDIN_HOT sim::ScheduleOutcome AladdinScheduler::Schedule(
    const sim::ScheduleRequest& request, cluster::ClusterState& state) {
  const std::vector<obs::PhaseDelta> phases_before =
      obs::MetricsEnabled() ? obs::CapturePhases()
                            : std::vector<obs::PhaseDelta>{};
  PrepareWeights(*request.workload);
  return ScheduleOne(request, state, PrepareNetwork(state), phases_before);
}

ALADDIN_HOT std::vector<sim::ScheduleOutcome> AladdinScheduler::ScheduleBatch(
    std::span<const sim::ScheduleRequest> requests,
    cluster::ClusterState& state) {
  std::vector<sim::ScheduleOutcome> outcomes;
  outcomes.reserve(requests.size());
  if (requests.empty()) return outcomes;
  // One warm prep for the whole micro-batch: weights once (every request
  // shares the workload) and one Refresh() of the aggregated network. The
  // per-request solves below fold their own mutations in eagerly, so no
  // further sync is needed between requests — this is what makes the batch
  // bit-identical to sequential Schedule() calls modulo the
  // net_syncs/net_sync_noop/weights_cached prep counters.
  std::vector<obs::PhaseDelta> phases_before =
      obs::MetricsEnabled() ? obs::CapturePhases()
                            : std::vector<obs::PhaseDelta>{};
  PrepareWeights(*requests.front().workload);
  AggregatedNetwork& network = PrepareNetwork(state);
  for (std::size_t r = 0; r < requests.size(); ++r) {
    ALADDIN_DCHECK(requests[r].workload == requests.front().workload);
    outcomes.push_back(
        ScheduleOne(requests[r], state, network, phases_before));
    if (obs::JournalEnabled()) {
      // Per-request batch marker: machine = request index within the batch,
      // detail = arrival size. check_journal.py uses these to pin the
      // "terminal records in request order" contract.
      obs::EmitDecision(obs::DecisionKind::kEvent,
                        obs::Cause::kBatchScheduled, -1,
                        static_cast<std::int32_t>(r), -1,
                        static_cast<std::int64_t>(
                            requests[r].arrival->size()));
    }
    if (obs::MetricsEnabled()) phases_before = obs::CapturePhases();
  }
  return outcomes;
}

ALADDIN_HOT sim::ScheduleOutcome AladdinScheduler::ScheduleOne(
    const sim::ScheduleRequest& request,
    [[maybe_unused]] cluster::ClusterState& state,  // DCHECK-build audits
    AggregatedNetwork& network,
    const std::vector<obs::PhaseDelta>& phases_before) {
  const trace::Workload& workload = *request.workload;
  sim::ScheduleOutcome outcome;

#if ALADDIN_DCHECK_IS_ON()
  // Violations already present on entry (online mode re-schedules into a
  // populated cluster) are not ours to answer for. The full-cluster audit
  // scans are debug-build work, but they still get their own exclusive
  // phase so the tick-coverage sum stays honest in DCHECK builds.
  // analyze:allow(A102) DCHECK-build audit snapshot, compiled out of release
  const std::vector<cluster::ContainerId> pre_existing_violations = [&] {
    ALADDIN_PHASE_SCOPE("core/verify");
    return cluster::CollectColocationViolations(state);
  }();
#endif

  SearchOptions search{options_.enable_il, options_.enable_dl};
  search.pool = SearchPool();
  SearchCounters counters;

  // --- Phase 1: flow augmentation in weighted-flow order. ----------------
  // Eq. 9 maximises Σ w_k·f(i,j): the solver augments the largest weighted
  // flows first, regardless of submission order. The sort is stable over
  // the arrival sequence, so the submission order still decides ties —
  // which is why the four arrival characteristics of §V.C produce identical
  // placements-per-machine-count but different migration/overhead costs
  // (Fig. 13): adversarial tie orders (CSA) leave more repair work.
  ALADDIN_TRACE_COUNTER("core/containers", request.arrival->size());
  arena_.Reset();  // per-tick arena: no arena-backed object is alive here
  std::vector<cluster::ContainerId>& pending = pending_;
  pending.clear();
  {
    ALADDIN_PHASE_SCOPE("core/augment");
    // Sort (weighted flow, arrival position) keys instead of stable-sorting
    // the id list: std::sort on the explicit tie-break reproduces the
    // stable order exactly, computes each container's weighted flow once
    // instead of O(n log n) times in a comparator, and — unlike
    // std::stable_sort — needs no temporary merge buffer. The key list
    // itself is a single bump allocation out of the per-tick arena.
    struct SortKey {
      std::int64_t weighted_flow;
      std::int32_t arrival_pos;
    };
    ArenaVector<SortKey> keyed{ArenaAllocator<SortKey>(&arena_)};
    keyed.reserve(request.arrival->size());
    for (std::size_t i = 0; i < request.arrival->size(); ++i) {
      const cluster::ContainerId c = (*request.arrival)[i];
      const auto& cont =
          workload.containers()[static_cast<std::size_t>(c.value())];
      keyed.push_back(SortKey{weights_.WeightedFlow(cont),
                              static_cast<std::int32_t>(i)});
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const SortKey& a, const SortKey& b) {
                if (a.weighted_flow != b.weighted_flow) {
                  return a.weighted_flow > b.weighted_flow;
                }
                return a.arrival_pos < b.arrival_pos;
              });

    // Group-decomposed augmentation: an application's containers are
    // isomorphic (identical requests), so siblings share one weighted flow
    // and — the sort being stable over their consecutive submission — sit
    // contiguous in `keyed`. Each maximal same-app stretch of length >= 2
    // goes through one sorted-capacity waterfall (PlaceGroupRun) instead of
    // per-container best-fit walks; the waterfall replays the serial walks
    // exactly, so everything downstream (journal order included) is
    // bit-identical. Groups always solve serially — the parallel pool keeps
    // accelerating singleton walks, which are themselves serial-identical.
    const bool use_groups = options_.group_waterfall && options_.enable_dl;
    std::size_t i = 0;
    while (i < keyed.size()) {
      const cluster::ContainerId c =
          (*request.arrival)[static_cast<std::size_t>(keyed[i].arrival_pos)];
      const auto& cont =
          workload.containers()[static_cast<std::size_t>(c.value())];
      std::size_t j = i + 1;
      if (use_groups && cont.request.cpu_millis() > 0) {
        while (j < keyed.size()) {
          const cluster::ContainerId d =
              (*request
                    .arrival)[static_cast<std::size_t>(keyed[j].arrival_pos)];
          if (workload.containers()[static_cast<std::size_t>(d.value())]
                  .app != cont.app) {
            break;
          }
          ++j;
        }
      }
      if (j - i >= 2) {
        group_run_.clear();
        for (std::size_t k = i; k < j; ++k) {
          group_run_.push_back(
              (*request
                    .arrival)[static_cast<std::size_t>(keyed[k].arrival_pos)]);
        }
        // analyze:allow(A103) pooled scratch, capacity retained across ticks
        group_out_.assign(group_run_.size(), cluster::MachineId::Invalid());
        network.PlaceGroupRun(group_run_, search, counters, group_out_);
        // Deploys already happened inside the run (in sibling order);
        // failures form a suffix during which nothing mutated, so emitting
        // the per-sibling records here reproduces the serial interleave —
        // and the post-flush diagnosis equals the serial mid-stream one.
        for (std::size_t k = 0; k < group_run_.size(); ++k) {
          const cluster::ContainerId cc = group_run_[k];
          const cluster::MachineId m = group_out_[k];
          if (m.valid()) {
            if (obs::JournalEnabled()) {
              obs::EmitDecision(obs::DecisionKind::kPlace,
                                obs::Cause::kAdmittedDirect, cc.value(),
                                m.value());
            }
          } else {
            pending.push_back(cc);
            if (obs::JournalEnabled()) {
              obs::EmitDecision(obs::DecisionKind::kReject,
                                network.DiagnoseFailure(cc), cc.value());
            }
          }
        }
        i = j;
        continue;
      }
      const cluster::MachineId m = network.FindMachine(c, search, counters);
      if (m.valid()) {
        network.Deploy(c, m);
        if (obs::JournalEnabled()) {
          obs::EmitDecision(obs::DecisionKind::kPlace,
                            obs::Cause::kAdmittedDirect, c.value(), m.value());
        }
      } else {
        pending.push_back(c);
        if (obs::JournalEnabled()) {
          // Non-terminal: repair may still admit it. The diagnosis explains
          // what blocked the augmentation pass.
          obs::EmitDecision(obs::DecisionKind::kReject,
                            network.DiagnoseFailure(c), c.value());
        }
      }
      ++i;
    }
  }
  outcome.rounds = 1;

  // --- Phase 2: migration / preemption repair, to a fixpoint. ------------
  // Augmenting the network keeps going "until f(i,j) = 0": each repair pass
  // migrates blockers around, which can open paths for containers an
  // earlier pass gave up on, so we iterate until a pass makes no progress.
  RepairEngine repair(network, weights_, options_.repair, &repair_scratch_);
  if (options_.enable_repair) {
    ALADDIN_PHASE_SCOPE("core/repair");
    for (int pass = 0; pass < options_.max_repair_passes && !pending.empty();
         ++pass) {
      const std::size_t before = pending.size();
      pending = repair.Repair(std::move(pending), search, counters);
      ++outcome.rounds;
      if (pending.size() >= before) break;  // no progress
    }
  }

  // --- Phase 3: packing compaction. --------------------------------------
  if (options_.enable_compaction) {
    ALADDIN_PHASE_SCOPE("core/compact");
    const auto budget = static_cast<std::int64_t>(std::llround(
        options_.compaction_migration_fraction *
        static_cast<double>(workload.container_count())));
    repair.Compact(search, counters, options_.compaction_passes, budget);
    ++outcome.rounds;
    // Compaction may have opened admissible machines for stragglers.
    if (options_.enable_repair && !pending.empty()) {
      pending = repair.Repair(std::move(pending), search, counters);
    }
  }

  // Copy (not move): the outcome's vector escapes the tick, the scratch
  // buffer's capacity stays pooled for the next one.
  // analyze:allow(A103) per-tick output that escapes the solve
  outcome.unplaced.assign(pending.begin(), pending.end());
  // Terminal diagnosis, always on: cost is O(feasible machines) *per
  // unplaced container*, zero on the perf-gated configs where everything
  // places. Consumers (resolver stats, bench cause tables) need the causes
  // even when the journal itself is off.
  // analyze:allow(A103) per-tick output that escapes the solve
  outcome.unplaced_causes.reserve(outcome.unplaced.size());
  for (cluster::ContainerId c : outcome.unplaced) {
    const obs::Cause cause = network.DiagnoseFailure(c);
    outcome.unplaced_causes.push_back(cause);
    if (obs::JournalEnabled()) {
      obs::EmitDecision(obs::DecisionKind::kUnplaced, cause, c.value());
    }
  }
  if (obs::JournalEnabled()) {
    // Search-effort summaries: per-Schedule aggregates, not per-probe
    // records — the hot search loops never emit.
    if (counters.dl_stops > 0) {
      obs::EmitDecision(obs::DecisionKind::kEvent, obs::Cause::kDepthLimitStop,
                        -1, -1, -1, counters.dl_stops);
    }
    if (counters.il_prunes > 0) {
      obs::EmitDecision(obs::DecisionKind::kEvent,
                        obs::Cause::kIsomorphismPrune, -1, -1, -1,
                        counters.il_prunes);
    }
  }
  outcome.explored_paths = counters.explored_paths;
  outcome.il_prunes = counters.il_prunes;
  outcome.dl_stops = counters.dl_stops;
  if (obs::MetricsEnabled()) {
    // Search counters are deterministic (PR2 guarantees serial == parallel),
    // so bulk-adding them keeps the registry bit-identical across --threads.
    ALADDIN_METRIC_ADD("core/search_explored", counters.explored_paths);
    ALADDIN_METRIC_ADD("core/search_il_prunes", counters.il_prunes);
    ALADDIN_METRIC_ADD("core/search_dl_stops", counters.dl_stops);
    ALADDIN_METRIC_ADD("core/unplaced", outcome.unplaced.size());
    // Bytes bumped out of the per-tick arena. Arena use is confined to
    // serial sections, so this is deterministic across --threads.
    ALADDIN_METRIC_ADD("core/arena_bytes", arena_.bytes_used());
    outcome.phases = obs::DiffPhases(phases_before, obs::CapturePhases());
  }
#if ALADDIN_DCHECK_IS_ON()
  {
    ALADDIN_PHASE_SCOPE("core/verify");
    CrossCheckOutcome(state, outcome, pre_existing_violations);
  }
#endif
  return outcome;
}

}  // namespace aladdin::core

// Annotated mutex: std::mutex wrapped in a clang `capability` type so
// -Wthread-safety can prove lock discipline (libstdc++'s std::mutex carries
// no capability attributes, which silently disables the analysis).
//
//   class Registry {
//     Mutex mutex_;
//     std::map<...> counters_ ALADDIN_GUARDED_BY(mutex_);
//   };
//   MutexLock lock(mutex_);          // scoped acquire, analysis-visible
//
// Condition-variable interop (std::condition_variable insists on
// std::unique_lock<std::mutex>) goes through CvLock, which exposes the
// native unique_lock for wait() while declaring the capability to the
// analysis:
//
//   CvLock lock(mutex_);
//   cv_.wait(lock.native(), [&]() ALADDIN_REQUIRES(mutex_) { ... });
//
// All wrappers are inline forwarding around std::mutex — identical codegen,
// identical TSan instrumentation, zero runtime cost.
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace aladdin {

class ALADDIN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ALADDIN_ACQUIRE() { m_.lock(); }
  void Unlock() ALADDIN_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool TryLock() ALADDIN_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }
  // Declares (to the analysis only) that the current thread holds the lock.
  void AssertHeld() const ALADDIN_ASSERT_CAPABILITY(this) {}

  // For std::condition_variable interop; use via CvLock.
  [[nodiscard]] std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

// RAII lock, visible to the thread-safety analysis.
class ALADDIN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) ALADDIN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() ALADDIN_RELEASE() { mutex_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

// RAII lock exposing the underlying std::unique_lock so it can be handed to
// std::condition_variable::wait. The wait's internal unlock/relock is
// invisible to the analysis, which is sound: the capability is held
// whenever user code runs (predicate checks and after wait returns).
class ALADDIN_SCOPED_CAPABILITY CvLock {
 public:
  explicit CvLock(Mutex& mutex) ALADDIN_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~CvLock() ALADDIN_RELEASE() = default;
  CvLock(const CvLock&) = delete;
  CvLock& operator=(const CvLock&) = delete;

  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace aladdin

// ASCII table rendering shared by every bench binary so paper-vs-measured
// comparisons print in one consistent format.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aladdin {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Variadic convenience: each cell is stringified.
  Table& AddRow(std::vector<std::string> cells);

  Table& Cell(std::string value);
  Table& Cell(std::int64_t value);
  Table& Cell(double value, int digits = 2);
  // Close the row built cell-by-cell; missing cells become "".
  Table& EndRow();

  [[nodiscard]] std::string Render() const;
  void Print() const;  // Render() to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

}  // namespace aladdin

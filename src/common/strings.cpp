#include "common/strings.h"

#include <charconv>
#include <cstdio>

namespace aladdin {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
           c == '\v';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, std::int64_t& out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double& out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars<double> is available in GCC 11+; use it directly.
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::string WithThousands(std::int64_t v) {
  const bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

std::string FormatFixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace aladdin

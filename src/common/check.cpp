#include "common/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace aladdin::internal {

CheckFailure::CheckFailure(const char* file, int line,
                           const char* expression) {
  os_ << file << ":" << line << ": ALADDIN_CHECK(" << expression
      << ") failed";
  prefix_size_ = os_.str().size();
}

CheckFailure::~CheckFailure() {
  std::string message = os_.str();
  // Separate the caller's streamed context (if any) from the fixed prefix.
  if (message.size() > prefix_size_) message.insert(prefix_size_, ": ");
  // fprintf, not std::cerr: the failure may fire during static destruction
  // or under a held lock, and stdio is the least likely thing to deadlock.
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace aladdin::internal

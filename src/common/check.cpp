#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace aladdin {

namespace {
std::atomic<CheckFailureHook> g_failure_hook{nullptr};
}  // namespace

CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  return g_failure_hook.exchange(hook, std::memory_order_acq_rel);
}

}  // namespace aladdin

namespace aladdin::internal {

CheckFailure::CheckFailure(const char* file, int line,
                           const char* expression) {
  os_ << file << ":" << line << ": ALADDIN_CHECK(" << expression
      << ") failed";
  prefix_size_ = os_.str().size();
}

CheckFailure::~CheckFailure() {
  std::string message = os_.str();
  // Separate the caller's streamed context (if any) from the fixed prefix.
  if (message.size() > prefix_size_) message.insert(prefix_size_, ": ");
  // fprintf, not std::cerr: the failure may fire during static destruction
  // or under a held lock, and stdio is the least likely thing to deadlock.
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  // Run the flight-recorder hook exactly once; a failure inside the hook
  // (or a second failing thread) falls straight through to abort.
  static std::atomic<bool> hook_ran{false};
  if (!hook_ran.exchange(true, std::memory_order_acq_rel)) {
    if (const CheckFailureHook hook =
            g_failure_hook.load(std::memory_order_acquire)) {
      hook();
    }
  }
  std::abort();
}

}  // namespace aladdin::internal

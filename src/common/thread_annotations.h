// Clang thread-safety annotation macros (the Abseil/LLVM pattern).
//
// Under clang the macros expand to the capability attributes consumed by
// -Wthread-safety, so lock discipline is checked at compile time; under any
// other compiler they expand to nothing and cost nothing. The annotated
// lock type that makes the analysis actually fire (libstdc++'s std::mutex
// carries no capability attributes) lives in common/mutex.h.
//
// Rollout policy (enforced by tools/analyze rule L1): every class on the
// concurrency surface — ThreadPool, obs::Registry, the trace/journal rings,
// the Prometheus listener — declares which mutex guards each mutable field
// with ALADDIN_GUARDED_BY, and functions that expect a lock held say so
// with ALADDIN_REQUIRES. Fields that are deliberately unguarded (confined
// to one thread, or synchronised by a join) carry an
// `analyze:allow(L103) <why>` marker instead, so every exception is a
// documented decision rather than an omission.
#pragma once

#if defined(__clang__)
#define ALADDIN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ALADDIN_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// On a data member: may only be read/written while `x` is held.
#define ALADDIN_GUARDED_BY(x) ALADDIN_THREAD_ANNOTATION(guarded_by(x))
// On a pointer member: the pointed-to data is guarded by `x`.
#define ALADDIN_PT_GUARDED_BY(x) ALADDIN_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: the caller must hold / must not hold the capabilities.
#define ALADDIN_REQUIRES(...) \
  ALADDIN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ALADDIN_EXCLUDES(...) \
  ALADDIN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On lock-type methods.
#define ALADDIN_CAPABILITY(name) ALADDIN_THREAD_ANNOTATION(capability(name))
#define ALADDIN_SCOPED_CAPABILITY ALADDIN_THREAD_ANNOTATION(scoped_lockable)
#define ALADDIN_ACQUIRE(...) \
  ALADDIN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ALADDIN_TRY_ACQUIRE(...) \
  ALADDIN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define ALADDIN_RELEASE(...) \
  ALADDIN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Tells the analysis a capability is held here without acquiring it (used
// after condition_variable interop hands the lock back, see common/mutex.h).
#define ALADDIN_ASSERT_CAPABILITY(x) \
  ALADDIN_THREAD_ANNOTATION(assert_capability(x))
// Return-value escape hatch for accessors that expose a guarded reference.
#define ALADDIN_RETURN_CAPABILITY(x) ALADDIN_THREAD_ANNOTATION(lock_returned(x))

// Opts one function out of the analysis; pair with a comment saying why.
#define ALADDIN_NO_THREAD_SAFETY_ANALYSIS \
  ALADDIN_THREAD_ANNOTATION(no_thread_safety_analysis)

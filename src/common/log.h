// Leveled logging to stderr. Intentionally tiny: benches print their results
// on stdout; everything diagnostic goes through here so it can be silenced
// globally (tests run with level = kWarn by default).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace aladdin {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug" / "info" / "warn" / "error" (case-sensitive) into *level.
// Returns false, leaving *level untouched, on anything else.
[[nodiscard]] bool ParseLogLevel(std::string_view text, LogLevel* level);

namespace internal {
void Emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace internal

}  // namespace aladdin

#define ALADDIN_LOG(level)                                       \
  if (static_cast<int>(::aladdin::LogLevel::level) <             \
      static_cast<int>(::aladdin::GetLogLevel())) {              \
  } else                                                         \
    ::aladdin::internal::LogLine(::aladdin::LogLevel::level)

#define LOG_DEBUG ALADDIN_LOG(kDebug)
#define LOG_INFO ALADDIN_LOG(kInfo)
#define LOG_WARN ALADDIN_LOG(kWarn)
#define LOG_ERROR ALADDIN_LOG(kError)

#include "common/csv.h"

#include <istream>
#include <ostream>

#include "common/strings.h"

namespace aladdin {

CsvWriter::CsvWriter(std::ostream& os, char sep) : os_(os), sep_(sep) {}

void CsvWriter::WriteRaw(std::string_view s) {
  if (row_started_) os_ << sep_;
  row_started_ = true;
  const bool needs_quotes =
      s.find(sep_) != std::string_view::npos ||
      s.find('"') != std::string_view::npos ||
      s.find('\n') != std::string_view::npos;
  if (!needs_quotes) {
    os_ << s;
    return;
  }
  os_ << '"';
  for (char c : s) {
    if (c == '"') os_ << '"';
    os_ << c;
  }
  os_ << '"';
}

CsvWriter& CsvWriter::Field(std::string_view value) {
  WriteRaw(value);
  return *this;
}

CsvWriter& CsvWriter::Field(std::int64_t value) {
  WriteRaw(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::Field(double value) {
  WriteRaw(FormatFixed(value, 6));
  return *this;
}

void CsvWriter::EndRow() {
  os_ << '\n';
  row_started_ = false;
}

CsvReader::CsvReader(std::istream& is, char sep) : is_(is), sep_(sep) {}

bool CsvReader::NextRow(std::vector<std::string>& fields) {
  fields.clear();
  std::string line;
  // Skip blank lines.
  do {
    if (!std::getline(is_, line)) return false;
    if (!line.empty() && line.back() == '\r') line.pop_back();
  } while (line.empty());

  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep_) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  // Fields never span lines in our formats; an unterminated quote simply
  // closes at end of line rather than swallowing the rest of the file.
  fields.push_back(std::move(field));
  ++rows_read_;
  return true;
}

}  // namespace aladdin

#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace aladdin {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  ALADDIN_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full 64-bit range
  // Debiased via rejection sampling on the top of the range.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % range;
  std::uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return lo + static_cast<std::int64_t>(x % range);
}

double Rng::UniformDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::int64_t Rng::Zipf(std::int64_t n, double s) {
  ALADDIN_CHECK(n >= 1);
  ALADDIN_CHECK(s > 0.0);
  // Rejection-inversion sampling (W. Hormann & G. Derflinger 1996).
  // H(x) is the integral of the density x^-s generalized to reals.
  const double one_minus_s = 1.0 - s;
  auto H = [&](double x) {
    if (std::abs(one_minus_s) < 1e-12) return std::log(x);
    return std::pow(x, one_minus_s) / one_minus_s;
  };
  auto Hinv = [&](double x) {
    if (std::abs(one_minus_s) < 1e-12) return std::exp(x);
    return std::pow(one_minus_s * x, 1.0 / one_minus_s);
  };
  const double h_x1 = H(1.5) - 1.0;
  const double h_n = H(static_cast<double>(n) + 0.5);
  for (;;) {
    const double u = h_x1 + UniformDouble() * (h_n - h_x1);
    const double x = Hinv(u);
    std::int64_t k = static_cast<std::int64_t>(std::llround(x));
    if (k < 1) k = 1;
    if (k > n) k = n;
    // Accept k when u lands inside the bar over k.
    if (u >= H(static_cast<double>(k) + 0.5) -
                 std::pow(static_cast<double>(k), -s)) {
      return k;
    }
  }
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    ALADDIN_CHECK(w >= 0.0);
    total += w;
  }
  ALADDIN_CHECK(total > 0.0);
  double target = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical tail
}

Rng Rng::Fork() {
  // Mix the original seed with the fork index so sibling streams are
  // decorrelated regardless of how much the parent has been consumed.
  std::uint64_t mix = seed_ ^ (0xA0761D6478BD642FULL * ++fork_counter_);
  std::uint64_t sm = mix;
  return Rng(SplitMix64(sm));
}

}  // namespace aladdin

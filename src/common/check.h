// Runtime invariant checking.
//
// ALADDIN_CHECK(cond) is always on: when `cond` is false it prints the
// failing expression with file:line plus any streamed context and aborts.
// ALADDIN_DCHECK(cond) carries the same contract but compiles down to
// nothing in Release builds (NDEBUG set and ALADDIN_ENABLE_DCHECKS unset);
// the sanitizer presets and the default test build keep it armed. Use CHECK
// for cold-path preconditions whose violation means memory-corrupting state
// (double deploy, use-after-stop), DCHECK for per-arc / per-iteration
// assertions on hot paths.
//
// Both macros stream context like a log line:
//
//   ALADDIN_CHECK(flow <= capacity) << "arc " << a << " over capacity";
//
// This replaces <cassert>: naked assert() is banned in src/ (tools/lint.py)
// because it vanishes under the default RelWithDebInfo build, which is
// exactly where state corruption silently poisons benchmark results.
#pragma once

#include <cstddef>
#include <sstream>

#if defined(ALADDIN_ENABLE_DCHECKS) || !defined(NDEBUG)
#define ALADDIN_DCHECK_IS_ON() 1
#else
#define ALADDIN_DCHECK_IS_ON() 0
#endif

namespace aladdin {

// Best-effort hook invoked once, after the failure message is printed and
// before abort(). The obs journal installs its flight-recorder dump here so
// a crashed run still leaves its last decisions on disk. The hook must not
// CHECK (re-entry aborts immediately). Returns the previous hook.
using CheckFailureHook = void (*)();
CheckFailureHook SetCheckFailureHook(CheckFailureHook hook);

}  // namespace aladdin

namespace aladdin::internal {

// Accumulates streamed context; the destructor prints everything and aborts.
// Only ever constructed on the failure path, so construction cost is moot.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expression);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  ~CheckFailure();  // [[noreturn]] in effect: prints and aborts

  std::ostream& stream() { return os_; }

 private:
  std::ostringstream os_;
  std::size_t prefix_size_ = 0;
};

// Ternary-operator glue (the glog idiom): gives the failure stream a `void`
// type so both branches of the conditional in ALADDIN_CHECK agree.
struct CheckVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace aladdin::internal

// Variadic so conditions containing commas (template argument lists,
// brace-initialised comparisons) need no extra parentheses.
#define ALADDIN_CHECK(...)                                           \
  (__VA_ARGS__)                                                      \
      ? (void)0                                                      \
      : ::aladdin::internal::CheckVoidify() &                        \
            ::aladdin::internal::CheckFailure(__FILE__, __LINE__,    \
                                              #__VA_ARGS__)          \
                .stream()

#if ALADDIN_DCHECK_IS_ON()
#define ALADDIN_DCHECK(...) ALADDIN_CHECK(__VA_ARGS__)
#else
// Compiled but never executed: the condition and streamed operands stay
// type-checked and "used" (no -Wunused fallout), then fold to nothing.
#define ALADDIN_DCHECK(...) \
  while (false) ALADDIN_CHECK(__VA_ARGS__)
#endif

// Tiny command-line flag registry for bench and example binaries.
//
// Usage:
//   Flags flags;
//   auto& machines = flags.Int64("machines", 2000, "cluster size");
//   auto& seed     = flags.Int64("seed", 42, "trace seed");
//   if (!flags.Parse(argc, argv)) return 1;   // prints usage on --help
//
// Accepted syntaxes: --name=value, --name value, and bare --name for bools.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace aladdin {

class Flags {
 public:
  std::int64_t& Int64(std::string name, std::int64_t def, std::string help);
  double& Double(std::string name, double def, std::string help);
  bool& Bool(std::string name, bool def, std::string help);
  std::string& String(std::string name, std::string def, std::string help);

  // Returns false (after printing a message to stderr) on unknown flags,
  // malformed values, or --help.
  bool Parse(int argc, char** argv);

  [[nodiscard]] std::string Usage() const;

 private:
  enum class Kind { kInt64, kDouble, kBool, kString };
  struct Flag {
    std::string name;
    std::string help;
    Kind kind;
    // Own the storage so references handed to callers stay stable.
    std::unique_ptr<std::int64_t> i64;
    std::unique_ptr<double> dbl;
    std::unique_ptr<bool> bl;
    std::unique_ptr<std::string> str;
    std::string default_repr;
  };
  std::vector<Flag> flags_;
  Flag* Find(std::string_view name);
  bool Assign(Flag& f, std::string_view value);
};

}  // namespace aladdin

// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (trace generation, tie
// breaking, local search) draws from an explicitly seeded Rng so that every
// experiment is reproducible bit-for-bit across runs and machines. The
// engine is xoshiro256** (Blackman & Vigna), seeded through SplitMix64 —
// fast, tiny state, and well past the quality bar for simulation workloads.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace aladdin {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t SplitMix64(std::uint64_t& state);

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  // Raw 64 random bits (UniformRandomBitGenerator interface).
  result_type operator()() { return Next(); }
  std::uint64_t Next();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Zipf-distributed integer in [1, n] with exponent s > 0. Used for the
  // heavy-tailed application-size distribution (rejection-inversion method,
  // exact for any n without precomputing the harmonic table).
  std::int64_t Zipf(std::int64_t n, double s);

  // Sample an index according to non-negative weights (linear scan; fine for
  // the small categorical draws we make). Requires at least one w > 0.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Deterministically derive an independent child stream (for parallel or
  // per-entity generation); child #k of a given Rng is stable across runs.
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> s_;
  std::uint64_t fork_counter_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace aladdin

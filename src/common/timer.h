// Wall-clock timing helpers for latency metrics (Fig. 12 / Fig. 13a).
#pragma once

#include <chrono>
#include <cstdint>

namespace aladdin {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  [[nodiscard]] double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  [[nodiscard]] std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Adds elapsed seconds to `*sink` on destruction; for accumulating time spent
// inside a phase across many calls.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace aladdin

#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace aladdin {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  {
    MutexLock lock(mutex_);
    // Always-on: a task enqueued after shutdown begins may never run (the
    // workers exit once the queue drains), deadlocking the returned future.
    ALADDIN_CHECK(!stopping_) << "ThreadPool::Submit after shutdown began";
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::Wait() {
  CvLock lock(mutex_);
  idle_cv_.wait(lock.native(), [this]() ALADDIN_REQUIRES(mutex_) {
    return queue_.empty() && in_flight_ == 0;
  });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      CvLock lock(mutex_);
      cv_.wait(lock.native(), [this]() ALADDIN_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
      // The pop and the in_flight_ increment share one critical section:
      // splitting them opens the classic missed-wakeup race where Wait()
      // observes an empty queue and in_flight_ == 0 while a task is in
      // transit between the two, and returns with work still running.
      ++in_flight_;
    }
    task();  // exceptions surface through the packaged_task's future
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.thread_count();
  if (workers <= 1 || n == 1) {
    SerialFor(begin, end, fn);
    return;
  }
  // Contiguous chunks, one per worker, so iteration->thread mapping is
  // deterministic (matters only for perf, not results — tasks are
  // independent by contract).
  const std::size_t chunk = (n + workers - 1) / workers;
  // analyze:allow(A102) one future per worker, bounded by the pool size
  std::vector<std::future<void>> futures;
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.Submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

void SerialFor(std::size_t begin, std::size_t end,
               const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = begin; i < end; ++i) fn(i);
}

}  // namespace aladdin

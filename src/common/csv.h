// Minimal CSV reading/writing for trace (de)serialisation and bench output.
// Supports RFC-4180-style quoting for fields containing separators/quotes;
// that is all the trace format needs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aladdin {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os, char sep = ',');

  CsvWriter& Field(std::string_view value);
  CsvWriter& Field(std::int64_t value);
  CsvWriter& Field(double value);
  // Terminate the current row.
  void EndRow();

 private:
  std::ostream& os_;
  char sep_;
  bool row_started_ = false;
  void WriteRaw(std::string_view s);
};

class CsvReader {
 public:
  explicit CsvReader(std::istream& is, char sep = ',');

  // Reads the next row into `fields`; returns false at EOF. Blank lines are
  // skipped. Quoted fields may contain separators and doubled quotes.
  bool NextRow(std::vector<std::string>& fields);

  [[nodiscard]] std::size_t rows_read() const { return rows_read_; }

 private:
  std::istream& is_;
  char sep_;
  std::size_t rows_read_ = 0;
};

}  // namespace aladdin

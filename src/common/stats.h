// Descriptive statistics used by the metrics pipeline and the trace
// generator's self-checks: streaming moments, exact percentiles over stored
// samples, fixed-width histograms and empirical CDFs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aladdin {

// Streaming mean / variance / extrema (Welford). O(1) memory; suitable for
// metrics that never need percentiles.
class OnlineStats {
 public:
  void Add(double x);
  void Merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  // Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores every sample; supports exact order statistics. Used for latency
// distributions where p99 matters and sample counts are modest.
class Sample {
 public:
  void Add(double x);
  void Reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  // Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double Percentile(double p) const;
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  // Kept sorted lazily: sorted_upto_ tracks how much of the prefix is known
  // sorted so repeated Percentile calls don't re-sort.
  mutable std::vector<double> values_;
  mutable bool dirty_ = false;
  void EnsureSorted() const;
};

// Fixed-bin histogram over [lo, hi); values outside are clamped into the
// first/last bin so totals always match the number of Add calls.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  // Inclusive lower edge of a bin.
  [[nodiscard]] double BinLow(std::size_t bin) const;
  [[nodiscard]] double BinHigh(std::size_t bin) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Point on an empirical CDF: `fraction` of samples are <= `value`.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;
};

// Builds an empirical CDF reduced to at most `max_points` evenly spaced
// quantile knots — exactly what Fig. 8(a) plots (CDF of containers per app).
std::vector<CdfPoint> BuildCdf(std::vector<double> samples,
                               std::size_t max_points = 64);

// Render a CDF as an aligned two-column ASCII block for bench output.
std::string FormatCdf(const std::vector<CdfPoint>& cdf,
                      const std::string& value_label,
                      const std::string& fraction_label);

}  // namespace aladdin

// Machine-readable bench results (BENCH_*.json).
//
// Every bench binary that matters for CI perf tracking serialises its
// numbers through this writer so tools/perf_compare.py can diff a fresh run
// against the committed baselines in bench/baselines/. The schema is flat
// on purpose — one metrics array, insertion-ordered and deterministic, so
// two runs of the same binary produce byte-comparable files apart from the
// measured values:
//
//   {
//     "schema": "aladdin-bench-v1",
//     "bench": "online",
//     "tags": {"nodes": 10000, "mode": "incremental"},
//     "metrics": [
//       {"name": "resolve_ms_p50", "unit": "ms", "value": 1.52},
//       ...
//     ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace aladdin {

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name);

  // Run parameters (cluster size, mode, seed, ...) — context, not compared.
  void Tag(const std::string& key, const std::string& value);
  void Tag(const std::string& key, std::int64_t value);

  // One number. The unit doubles as the comparison policy in
  // tools/perf_compare.py: time units (ns/us/ms/s) are regression-checked
  // against the baseline ratio, "count" metrics are identity-checked
  // (placement decisions are deterministic), anything else is informational.
  void Metric(const std::string& name, double value,
              const std::string& unit = "");

  // Expands a latency sample into <name>_{p50,p90,p99,max,mean} metrics
  // plus a <name>_count identity metric.
  void Percentiles(const std::string& name, const Sample& sample,
                   const std::string& unit = "ms");

  [[nodiscard]] std::string ToJson() const;

  // Writes ToJson() (plus trailing newline) to `path`; false on I/O error.
  [[nodiscard]] bool WriteFile(const std::string& path) const;

 private:
  struct TagEntry {
    std::string key;
    std::string value;  // pre-rendered JSON (quoted string or bare number)
  };
  struct MetricEntry {
    std::string name;
    std::string unit;
    double value;
  };
  std::string bench_name_;
  std::vector<TagEntry> tags_;
  std::vector<MetricEntry> metrics_;
};

}  // namespace aladdin

#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/strings.h"

namespace aladdin {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::Cell(std::string value) {
  pending_.push_back(std::move(value));
  return *this;
}

Table& Table::Cell(std::int64_t value) {
  pending_.push_back(WithThousands(value));
  return *this;
}

Table& Table::Cell(double value, int digits) {
  pending_.push_back(FormatFixed(value, digits));
  return *this;
}

Table& Table::EndRow() {
  AddRow(std::move(pending_));
  pending_.clear();
  return *this;
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto print_sep = [&] {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  return os.str();
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace aladdin

// Strong integer identifiers.
//
// The simulator juggles several index spaces (containers, applications,
// machines, racks, flow-graph vertices...). Mixing them up compiles fine with
// plain `int` and produces silently wrong schedules, so every index space
// gets its own vocabulary type. An Id is a thin wrapper over int32_t with
// value semantics, ordering, hashing, and an explicit `value()` escape hatch
// for array indexing.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace aladdin {

// `Tag` is an empty struct unique to each index space; it never gets
// instantiated and only serves to make distinct template instantiations.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::int32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  // Sentinel for "no such object". All default-constructed Ids are invalid.
  static constexpr Id Invalid() { return Id(-1); }
  [[nodiscard]] constexpr bool valid() const { return value_ >= 0; }

  [[nodiscard]] constexpr underlying_type value() const { return value_; }

  constexpr auto operator<=>(const Id&) const = default;

 private:
  underlying_type value_ = -1;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

struct ContainerTag {};
struct ApplicationTag {};
struct MachineTag {};
struct RackTag {};
struct SubClusterTag {};
struct VertexTag {};
struct ArcTag {};

using ContainerId = Id<ContainerTag>;
using ApplicationId = Id<ApplicationTag>;
using MachineId = Id<MachineTag>;
using RackId = Id<RackTag>;
using SubClusterId = Id<SubClusterTag>;
using VertexId = Id<VertexTag>;
using ArcId = Id<ArcTag>;

}  // namespace aladdin

// The id types are used pervasively under aladdin::cluster (and re-exported
// to the layers above it); make the qualified spellings work too.
namespace aladdin::cluster {
using aladdin::ApplicationId;
using aladdin::ArcId;
using aladdin::ContainerId;
using aladdin::MachineId;
using aladdin::RackId;
using aladdin::SubClusterId;
using aladdin::VertexId;
}  // namespace aladdin::cluster

namespace std {
template <typename Tag>
struct hash<aladdin::Id<Tag>> {
  size_t operator()(aladdin::Id<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
}  // namespace std

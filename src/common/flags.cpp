#include "common/flags.h"

#include <cstdio>
#include <sstream>

#include "common/strings.h"

namespace aladdin {

std::int64_t& Flags::Int64(std::string name, std::int64_t def,
                           std::string help) {
  Flag f;
  f.name = std::move(name);
  f.help = std::move(help);
  f.kind = Kind::kInt64;
  f.i64 = std::make_unique<std::int64_t>(def);
  f.default_repr = std::to_string(def);
  flags_.push_back(std::move(f));
  return *flags_.back().i64;
}

double& Flags::Double(std::string name, double def, std::string help) {
  Flag f;
  f.name = std::move(name);
  f.help = std::move(help);
  f.kind = Kind::kDouble;
  f.dbl = std::make_unique<double>(def);
  f.default_repr = FormatFixed(def, 4);
  flags_.push_back(std::move(f));
  return *flags_.back().dbl;
}

bool& Flags::Bool(std::string name, bool def, std::string help) {
  Flag f;
  f.name = std::move(name);
  f.help = std::move(help);
  f.kind = Kind::kBool;
  f.bl = std::make_unique<bool>(def);
  f.default_repr = def ? "true" : "false";
  flags_.push_back(std::move(f));
  return *flags_.back().bl;
}

std::string& Flags::String(std::string name, std::string def,
                           std::string help) {
  Flag f;
  f.name = std::move(name);
  f.help = std::move(help);
  f.kind = Kind::kString;
  f.str = std::make_unique<std::string>(std::move(def));
  f.default_repr = *f.str;
  flags_.push_back(std::move(f));
  return *flags_.back().str;
}

Flags::Flag* Flags::Find(std::string_view name) {
  for (auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

bool Flags::Assign(Flag& f, std::string_view value) {
  switch (f.kind) {
    case Kind::kInt64:
      return ParseInt64(value, *f.i64);
    case Kind::kDouble:
      return ParseDouble(value, *f.dbl);
    case Kind::kBool:
      if (value == "true" || value == "1") {
        *f.bl = true;
        return true;
      }
      if (value == "false" || value == "0") {
        *f.bl = false;
        return true;
      }
      return false;
    case Kind::kString:
      *f.str = std::string(value);
      return true;
  }
  return false;
}

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", Usage().c_str());
      return false;
    }
    if (!StartsWith(arg, "--")) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   std::string(arg).c_str());
      return false;
    }
    arg.remove_prefix(2);
    std::string_view name = arg;
    std::string_view value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    Flag* f = Find(name);
    if (f == nullptr) {
      std::fprintf(stderr, "unknown flag: --%s\n%s",
                   std::string(name).c_str(), Usage().c_str());
      return false;
    }
    if (!has_value) {
      if (f->kind == Kind::kBool) {
        *f->bl = true;  // bare --flag turns a bool on
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n",
                     std::string(name).c_str());
        return false;
      }
      value = argv[++i];
    }
    if (!Assign(*f, value)) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n",
                   std::string(name).c_str(), std::string(value).c_str());
      return false;
    }
  }
  return true;
}

std::string Flags::Usage() const {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name << " (default " << f.default_repr << ")  "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace aladdin

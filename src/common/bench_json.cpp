#include "common/bench_json.h"

#include <cstdio>
#include <sstream>

namespace aladdin {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

BenchJson::BenchJson(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void BenchJson::Tag(const std::string& key, const std::string& value) {
  tags_.push_back({key, "\"" + Escape(value) + "\""});
}

void BenchJson::Tag(const std::string& key, std::int64_t value) {
  tags_.push_back({key, std::to_string(value)});
}

void BenchJson::Metric(const std::string& name, double value,
                       const std::string& unit) {
  metrics_.push_back({name, unit, value});
}

void BenchJson::Percentiles(const std::string& name, const Sample& sample,
                            const std::string& unit) {
  Metric(name + "_p50", sample.Percentile(50), unit);
  Metric(name + "_p90", sample.Percentile(90), unit);
  Metric(name + "_p99", sample.Percentile(99), unit);
  Metric(name + "_max", sample.max(), unit);
  Metric(name + "_mean", sample.mean(), unit);
  Metric(name + "_count", static_cast<double>(sample.count()), "count");
}

std::string BenchJson::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"aladdin-bench-v1\",\n  \"bench\": \""
     << Escape(bench_name_) << "\",\n  \"tags\": {";
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << Escape(tags_[i].key) << "\": " << tags_[i].value;
  }
  os << "},\n  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    os << (i ? ",\n    " : "\n    ");
    os << "{\"name\": \"" << Escape(metrics_[i].name) << "\", \"unit\": \""
       << Escape(metrics_[i].unit) << "\", \"value\": "
       << Number(metrics_[i].value) << "}";
  }
  os << "\n  ]\n}";
  return os.str();
}

bool BenchJson::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = ToJson();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
                  std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace aladdin

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace aladdin {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Sample::Add(double x) {
  values_.push_back(x);
  dirty_ = true;
}

void Sample::EnsureSorted() const {
  if (dirty_) {
    std::sort(values_.begin(), values_.end());
    dirty_ = false;
  }
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Sample::min() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Sample::max() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Sample::Percentile(double p) const {
  if (values_.empty()) return 0.0;
  EnsureSorted();
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] + (values_[hi] - values_[lo]) * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  ALADDIN_CHECK(hi > lo);
  ALADDIN_CHECK(bins > 0);
}

void Histogram::Add(double x) {
  std::size_t bin;
  if (x < lo_) {
    bin = 0;
  } else if (x >= hi_) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  ALADDIN_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::BinLow(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::BinHigh(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::vector<CdfPoint> BuildCdf(std::vector<double> samples,
                               std::size_t max_points) {
  std::vector<CdfPoint> cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  const std::size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (std::size_t k = 1; k <= points; ++k) {
    // Index of the k-th quantile knot (last sample <= that quantile).
    const std::size_t idx = k * n / points - 1;
    cdf.push_back({samples[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return cdf;
}

std::string FormatCdf(const std::vector<CdfPoint>& cdf,
                      const std::string& value_label,
                      const std::string& fraction_label) {
  std::ostringstream os;
  os << value_label << "\t" << fraction_label << "\n";
  for (const auto& p : cdf) {
    os << p.value << "\t" << p.fraction << "\n";
  }
  return os.str();
}

}  // namespace aladdin

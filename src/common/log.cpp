#include "common/log.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace aladdin {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
Mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  if (text == "debug") {
    *level = LogLevel::kDebug;
  } else if (text == "info") {
    *level = LogLevel::kInfo;
  } else if (text == "warn") {
    *level = LogLevel::kWarn;
  } else if (text == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {
void Emit(LogLevel level, const std::string& message) {
  MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}
}  // namespace internal

}  // namespace aladdin

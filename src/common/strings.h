// Small string utilities shared by the CSV layer, flag parser and reporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aladdin {

// Split on a single character; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// Locale-independent conversions that report failure instead of throwing.
bool ParseInt64(std::string_view s, std::int64_t& out);
bool ParseDouble(std::string_view s, double& out);

// "12345678" -> "12,345,678" (for human-readable bench tables).
std::string WithThousands(std::int64_t v);

// Fixed-precision double ("%.*f") without iostream state leakage.
std::string FormatFixed(double v, int digits);

}  // namespace aladdin

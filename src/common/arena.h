// Monotonic per-tick arena.
//
// The scheduling tick builds many short-lived containers (candidate lists,
// repair queues, audit scratch) whose lifetimes all end when the tick does.
// An Arena turns those N mallocs into bump-pointer arithmetic: allocation is
// a pointer increment within a retained chunk, and Reset() at the start of
// the next tick rewinds the cursor without returning memory to the system.
// After a warmup tick the chunk list has reached its high-water mark and a
// steady-state tick performs zero heap allocations.
//
// Discipline:
//  * Reset() must only run when no arena-backed object is alive — the owner
//    (scheduler / resolver) resets at tick start, before any allocation.
//  * Arena-backed vectors never free; growth abandons the old block inside
//    the arena (reclaimed wholesale by the next Reset). Reserve up front
//    where sizes are known.
//  * Single-threaded by design: one arena per owning component, never shared
//    across the ThreadPool (the parallel scoring paths use per-thread
//    flow::Workspace state instead, keeping results deterministic).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/check.h"

namespace aladdin {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t first_chunk_bytes = kDefaultChunkBytes)
      : first_chunk_bytes_(first_chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump allocation. Alignment must be a power of two.
  void* Allocate(std::size_t bytes, std::size_t align) {
    ALADDIN_DCHECK((align & (align - 1)) == 0)
        << "Arena: alignment " << align << " not a power of two";
    used_ += bytes;
    for (; chunk_ < chunks_.size(); ++chunk_, offset_ = 0) {
      Chunk& c = chunks_[chunk_];
      const std::size_t aligned = AlignedOffset(c, offset_, align);
      if (aligned + bytes <= c.size) {
        offset_ = aligned + bytes;
        return c.data.get() + aligned;
      }
    }
    // No retained chunk fits: grow geometrically (warmup only — a
    // steady-state tick never reaches this).
    std::size_t size = chunks_.empty() ? first_chunk_bytes_
                                       : chunks_.back().size * 2;
    while (size < bytes + align) size *= 2;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    chunk_ = chunks_.size() - 1;
    const std::size_t aligned = AlignedOffset(chunks_.back(), 0, align);
    offset_ = aligned + bytes;
    return chunks_.back().data.get() + aligned;
  }

  template <typename T>
  T* AllocateArray(std::size_t n) {
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Rewind to empty, keeping every chunk. Call only between ticks, when no
  // arena-backed object is alive.
  void Reset() {
    chunk_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  // Bytes handed out since the last Reset (monotonic within a tick; growth
  // waste from abandoned vector blocks counts — it is real arena pressure).
  [[nodiscard]] std::size_t bytes_used() const { return used_; }

  // Total bytes retained across resets (the high-water footprint).
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  // Smallest offset >= from whose absolute address is `align`-aligned
  // (offsets alone are not enough: the chunk base is only new[]-aligned).
  static std::size_t AlignedOffset(const Chunk& c, std::size_t from,
                                   std::size_t align) {
    const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
    const auto mask = static_cast<std::uintptr_t>(align - 1);
    return static_cast<std::size_t>(((base + from + mask) & ~mask) - base);
  }
  std::size_t first_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // current chunk index
  std::size_t offset_ = 0;  // bump cursor within the current chunk
  std::size_t used_ = 0;
};

// Minimal std::allocator adaptor so standard containers can live in the
// arena: `std::vector<T, ArenaAllocator<T>> v(ArenaAllocator<T>(&arena));`.
// deallocate() is a no-op — memory returns wholesale at Arena::Reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) { return arena_->AllocateArray<T>(n); }
  void deallocate(T*, std::size_t) {}  // monotonic: freed by Arena::Reset

  [[nodiscard]] Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }

 private:
  Arena* arena_;
};

// The idiomatic per-tick container: construct (or clear) after the owning
// arena's Reset, drop before the next one.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace aladdin

// Fixed-size worker pool with a blocking task queue plus a ParallelFor
// convenience built on top of it.
//
// Experiment sweeps (bench_latency, bench_overhead) run independent
// scheduler instances per configuration; ParallelFor partitions those sweeps
// deterministically so results are identical regardless of worker count —
// only wall-clock changes. On single-core hosts the pool degrades gracefully
// to serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace aladdin {

class ThreadPool {
 public:
  // threads == 0 means std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  // Enqueue a task; the future resolves when it has run.
  std::future<void> Submit(std::function<void()> task);

  // Block until every task submitted so far has finished.
  void Wait();

 private:
  friend struct ThreadPoolTestPeer;  // drives shutdown edges in tests

  void WorkerLoop();

  // Written only by the constructor (before any worker runs) and joined by
  // the destructor; no concurrent access by construction.
  std::vector<std::thread> workers_;  // analyze:allow(L103) ctor/dtor confined
  Mutex mutex_;
  std::queue<std::packaged_task<void()>> queue_ ALADDIN_GUARDED_BY(mutex_);
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ ALADDIN_GUARDED_BY(mutex_) = 0;
  bool stopping_ ALADDIN_GUARDED_BY(mutex_) = false;
};

// Invokes fn(i) for i in [begin, end) across the pool, in contiguous chunks.
// Blocks until all iterations are done. fn must be safe to call concurrently
// for distinct i.
void ParallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& fn);

// Serial fallback variant usable without constructing a pool.
void SerialFor(std::size_t begin, std::size_t end,
               const std::function<void(std::size_t)>& fn);

}  // namespace aladdin

// Markers consumed by the aladdin-analyze static-analysis suite
// (tools/analyze/) — see DESIGN.md §8 for the rule catalog.
//
// ALADDIN_HOT marks a steady-state hot-path entry point: the function and
// everything it transitively calls (rule A1) must not heap-allocate outside
// the sanctioned scratch owners (common/arena.h Arena, flow::Workspace and
// its StampedArray/RingQueue members). Under clang it also leaves a real
// [[clang::annotate]] node in the AST for the libclang backend; under other
// compilers it is a pure source-level marker for the built-in backend.
//
// Escape hatch, shared by every analyze rule: suppress one diagnostic on
// one line with
//
//   ... flagged code ...  // `analyze:allow(A102) cold audit path, runs once`
//
// A marker must name the exact diagnostic code and carry a reason —
// reasonless suppressions are themselves a violation (X001), so the
// suppression inventory stays reviewable (aladdin-analyze --list-allows).
#pragma once

#if defined(__clang__)
#define ALADDIN_HOT [[clang::annotate("aladdin::hot")]]
#else
#define ALADDIN_HOT
#endif

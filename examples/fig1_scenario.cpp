// The paper's Figure 1, executable: "Three containers, one S0 and two S1,
// arrive at the same time. Each container of S1 has a higher priority, and
// it is not recommended to be deployed with S0 on the same machine because
// of anti-affinity constraints."
//
//   (b) Firmament: S0 ends up unscheduled to avoid the anti-affinity
//       constraint, despite being rescheduled many times.
//   (c) Medea (violation-tolerant weights): minimises machines by running
//       S0 and S1 together — violating the anti-affinity constraint.
//   Aladdin: places everything with zero violations by spreading exactly
//       as far as necessary.
//
// Run:  build/examples/fig1_scenario
#include <cstdio>

#include "baselines/firmament/scheduler.h"
#include "baselines/medea/scheduler.h"
#include "cluster/audit.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/scheduler.h"
#include "obs/cli.h"
#include "sim/experiment.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  obs::ObsCli obs_cli(flags, /*with_obs=*/false);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;
  // Two machines, sized so that the three containers only fit if some pair
  // shares a machine — the tension Fig. 1 is about.
  cluster::Topology topo;
  const auto g = topo.AddSubCluster();
  const auto r = topo.AddRack(g);
  topo.AddMachine(r, cluster::ResourceVector::Cores(10, 20));
  topo.AddMachine(r, cluster::ResourceVector::Cores(10, 20));

  trace::Workload wl;
  // S0: one 4-core container, low priority.
  const auto s0 = wl.AddApplication("S0", 1,
                                    cluster::ResourceVector::Cores(4, 8), 0);
  // S1: two 3-core containers, higher priority. Only the S0 <-> S1
  // anti-affinity exists (the figure's caption); S1's replicas may share.
  const auto s1 = wl.AddApplication("S1", 2,
                                    cluster::ResourceVector::Cores(3, 6), 2);
  wl.AddAntiAffinity(s0, s1);  // S0 must not share a machine with S1
  // All three containers fit on ONE machine if the constraint is violated
  // (4+3+3 = 10 cores) — that is Medea's temptation. The clean assignment
  // needs two machines: both S1 on one, S0 on the other.

  const auto arrival = trace::MakeArrivalSequence(wl, trace::ArrivalOrder::kFifo);

  Table table({"scheduler", "S0 placement", "S1 placements", "violations",
               "unscheduled"});
  auto report = [&](sim::Scheduler& scheduler) {
    auto state = wl.MakeState(topo);
    sim::ScheduleRequest request{&wl, &arrival};
    const auto outcome = scheduler.Schedule(request, state);
    auto where = [&](cluster::ContainerId c) -> std::string {
      if (!state.IsPlaced(c)) return "UNSCHEDULED";
      return "M" + std::to_string(state.PlacementOf(c).value());
    };
    const auto audit = cluster::Audit(state);
    table.Cell(scheduler.name())
        .Cell(where(wl.application(s0).containers[0]))
        .Cell(where(wl.application(s1).containers[0]) + " / " +
              where(wl.application(s1).containers[1]))
        .Cell(static_cast<std::int64_t>(audit.colocation_violations))
        .Cell(static_cast<std::int64_t>(outcome.unplaced.size()))
        .EndRow();
  };

  {
    baselines::FirmamentOptions fo;
    fo.cost_model = baselines::FirmamentCostModel::kTrivial;  // packs hard
    fo.reschd = 1;
    baselines::FirmamentScheduler firmament(fo);
    report(firmament);
  }
  {
    baselines::MedeaOptions mo;
    mo.weights = {1, 1, 1};  // fully violation-tolerant: packs
    baselines::MedeaScheduler medea(mo);
    report(medea);
  }
  {
    core::AladdinScheduler aladdin;
    report(aladdin);
  }
  table.Print();
  std::printf(
      "\nFig. 1's trade-off, executable: violation-tolerant Medea saves a "
      "machine by co-locating S0 with S1 (the paper's 1c); Aladdin places "
      "both S1 replicas together and gives S0 the other machine — all "
      "deployed, zero violations. Our Firmament repairs this toy conflict "
      "successfully (its relocation attempt finds the free machine); the "
      "stranding of 1b emerges at trace scale, where relocation targets "
      "are themselves conflicted — see bench_placement_quality.\n");
  return 0;
}

// drill_runner: runs one watchdog drill scenario (or all of them) and
// prints each report. Exits non-zero if any scenario misses its expected
// alert kinds or fires an unexpected one — the CI perf-smoke gate.
//
//   drill_runner --scenario=drain_storm --ticks=48 --journal=drill.jsonl
//   drill_runner --scenario=all --journal=drills.jsonl   # one file per
//                                          # scenario: drills.<name>.jsonl
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/log.h"
#include "obs/cli.h"
#include "obs/journal.h"
#include "sim/drill.h"

using aladdin::sim::DrillOptions;
using aladdin::sim::DrillReport;
using aladdin::sim::DrillScenario;

namespace {

// drills.jsonl + "drain_storm" -> drills.drain_storm.jsonl
std::string PerScenarioJournalPath(const std::string& base,
                                   const char* scenario) {
  const std::size_t dot = base.rfind('.');
  const std::size_t slash = base.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + "." + scenario;
  }
  return base.substr(0, dot) + "." + scenario + base.substr(dot);
}

}  // namespace

int main(int argc, char** argv) {
  aladdin::Flags flags;
  aladdin::obs::ObsCli obs_cli(flags);
  auto& scenario_name = flags.String(
      "scenario", "all", "drill scenario (baseline, drain_storm, "
      "routing_skew, arrival_burst, deadline_starvation, cause_shift, all)");
  auto& ticks = flags.Int64("ticks", 48, "simulated ticks per scenario");
  auto& shards = flags.Int64("shards", 0,
                             "resolver shards (routing_skew forces >= 4)");
  auto& threads = flags.Int64("threads", 1, "solver threads");
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  std::vector<DrillScenario> scenarios;
  if (scenario_name == "all") {
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(DrillScenario::kCount); ++i) {
      scenarios.push_back(static_cast<DrillScenario>(i));
    }
  } else {
    const DrillScenario scenario =
        aladdin::sim::DrillScenarioFromName(scenario_name);
    if (scenario == DrillScenario::kCount) {
      LOG_ERROR << "unknown scenario '" << scenario_name << "'";
      return 1;
    }
    scenarios.push_back(scenario);
  }

  // Each drill is an independent run — ticks, container ids and alert ids
  // all restart at 0 — so a multi-scenario invocation rotates the journal
  // per scenario instead of interleaving incompatible streams (which
  // check_journal.py would reject) into one file.
  const bool rotate_journal =
      obs_cli.journal_requested() && scenarios.size() > 1;
  if (rotate_journal) {
    aladdin::obs::FinishJournal();
    std::remove(obs_cli.journal_path().c_str());
  }

  bool ok = true;
  for (const DrillScenario scenario : scenarios) {
    std::string journal_path;
    if (rotate_journal) {
      journal_path = PerScenarioJournalPath(
          obs_cli.journal_path(), aladdin::sim::DrillScenarioName(scenario));
      aladdin::obs::JournalOptions journal_options;
      journal_options.jsonl_path = journal_path;
      aladdin::obs::StartJournal(journal_options);
      if (!aladdin::obs::JournalSinkOpen()) {
        aladdin::obs::StopJournal();
        return 1;
      }
    }
    DrillOptions options;
    options.scenario = scenario;
    options.ticks = ticks;
    options.shards = static_cast<int>(shards);
    options.threads = static_cast<int>(threads);
    const DrillReport report = aladdin::sim::RunDrill(options);
    std::fputs(aladdin::sim::RenderDrillReport(report).c_str(), stdout);
    if (rotate_journal) {
      if (!aladdin::obs::FinishJournal()) ok = false;
      std::printf("  journal=%s\n", journal_path.c_str());
    }
    if (!report.fired_expected || !report.fired_only_expected) ok = false;
  }
  if (!obs_cli.Finish()) return 1;
  if (!ok) {
    std::fputs("DRILL FAILED: unexpected alert stream\n", stderr);
    return 1;
  }
  return 0;
}

// Holiday scale-up: the paper's motivating scenario (§I, §II.A) — ahead of
// the 11.11 e-commerce holiday / Black Friday, companies "augment the
// capabilities of applications by about 100× by scheduling massive LLAs in
// parallel".
//
// This example builds a steady-state cluster, then submits a 100× surge of
// the flagship application's replicas (high priority, anti-affinity within
// the app and against its cache tier) as ONE batch, and shows Aladdin
// absorbing it: everything placed, zero violations, bounded migrations.
//
// Run:  build/examples/holiday_scaleup [--machines N] [--surge K]
#include <cstdio>

#include "cluster/audit.h"
#include "common/flags.h"
#include "core/scheduler.h"
#include "obs/cli.h"
#include "sim/experiment.h"
#include "sim/report.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  auto& machines = flags.Int64("machines", 600, "cluster size");
  auto& surge = flags.Int64("surge", 100, "scale-up factor for the flagship");
  obs::ObsCli obs_cli(flags, /*with_obs=*/false);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  const cluster::Topology topology = trace::MakeAlibabaCluster(
      static_cast<std::size_t>(machines));

  trace::Workload workload;
  // Steady state: the flagship web store runs 4 replicas; its cache tier 8;
  // assorted background services fill the cluster to a comfortable level.
  const auto store = workload.AddApplication(
      "store-frontend", static_cast<std::size_t>(4 * surge),
      cluster::ResourceVector::Cores(4, 8), /*priority=*/3,
      /*anti_affinity_within=*/true);
  const auto cache = workload.AddApplication(
      "store-cache", static_cast<std::size_t>(surge),
      cluster::ResourceVector::Cores(8, 16), /*priority=*/2,
      /*anti_affinity_within=*/true);
  workload.AddAntiAffinity(store, cache);
  const auto analytics = workload.AddApplication(
      "analytics", 200, cluster::ResourceVector::Cores(2, 4), /*priority=*/0);
  workload.AddAntiAffinity(analytics, store);  // keep noise off the frontend
  workload.AddApplication("batch-misc", 800,
                          cluster::ResourceVector::Cores(1, 2));

  std::printf("surge workload: %zu containers onto %lld machines\n",
              workload.container_count(),
              static_cast<long long>(machines));

  // CLP ordering is the adversarial case: the low-priority filler arrives
  // first and the flagship surge last — Aladdin's weighted flows reorder
  // the batch so the surge still lands violation-free.
  core::AladdinScheduler scheduler;
  const sim::RunMetrics metrics = sim::RunExperimentOn(
      scheduler, workload, topology, trace::ArrivalOrder::kLowPriorityFirst,
      /*arrival_seed=*/11);

  sim::PrintRunTable({metrics});
  const bool ok = metrics.audit.TotalViolations() == 0;
  std::printf("\nflagship surge %s: %zu/%zu containers placed, "
              "%lld migrations, %lld preemptions\n",
              ok ? "ABSORBED" : "FAILED", metrics.audit.placed,
              metrics.audit.total_containers,
              static_cast<long long>(metrics.migrations),
              static_cast<long long>(metrics.preemptions));
  return ok ? 0 : 1;
}

// Failure-domain spreading: anti-affinity *within* an application exists "to
// decrease the downtime likelihood in case of hardware failures" (§II.A).
//
// This example deploys replicated services with within-app anti-affinity,
// then simulates the failure of every machine in turn and measures how many
// applications would lose quorum (more than half their replicas) — comparing
// Aladdin's constraint-respecting placement against a packing-only strawman
// that ignores anti-affinity. With the constraint enforced, one machine can
// never take more than one replica of any service.
//
// Run:  build/examples/failure_domains
#include <cstdio>
#include <vector>

#include "cluster/audit.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/flags.h"
#include "obs/cli.h"
#include "core/scheduler.h"
#include "sim/experiment.h"

using namespace aladdin;

namespace {

// Count applications losing a majority of replicas when `machine` dies.
std::size_t QuorumLosses(const cluster::ClusterState& state,
                         const trace::Workload& workload,
                         cluster::MachineId machine) {
  std::size_t losses = 0;
  for (const auto& app : workload.applications()) {
    if (app.containers.size() < 2) continue;
    std::size_t lost = 0;
    for (cluster::ContainerId c : app.containers) {
      if (state.IsPlaced(c) && state.PlacementOf(c) == machine) ++lost;
    }
    if (lost * 2 > app.containers.size()) ++losses;
  }
  return losses;
}

// Largest number of one replicated (anti-affinity) service's replicas
// sharing a machine. 1 means the constraint held everywhere.
std::size_t WorstColocation(const cluster::ClusterState& state,
                            const trace::Workload& workload) {
  std::size_t worst = 0;
  for (const auto& machine : state.topology().machines()) {
    for (const auto& [app_raw, count] : state.AppsOn(machine.id)) {
      const auto& app =
          workload.applications()[static_cast<std::size_t>(app_raw)];
      if (!app.anti_affinity_within) continue;
      worst = std::max(worst, static_cast<std::size_t>(count));
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  obs::ObsCli obs_cli(flags, /*with_obs=*/false);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  // 8 racks of 10 machines.
  const cluster::Topology topology = cluster::Topology::Uniform(
      80, cluster::ResourceVector::Cores(32, 64), /*machines_per_rack=*/10,
      /*racks_per_subcluster=*/4);

  trace::Workload workload;
  Rng rng(2026);
  for (int i = 0; i < 24; ++i) {
    const auto replicas = static_cast<std::size_t>(rng.UniformInt(3, 7));
    workload.AddApplication(
        "svc-" + std::to_string(i), replicas,
        cluster::ResourceVector::Cores(rng.UniformInt(1, 4),
                                       rng.UniformInt(2, 8)),
        /*priority=*/1, /*anti_affinity_within=*/true);
  }
  workload.AddApplication("filler", 300, cluster::ResourceVector::Cores(1, 2));

  // Aladdin placement (respects anti-affinity).
  core::AladdinScheduler scheduler;
  const auto arrival =
      trace::MakeArrivalSequence(workload, trace::ArrivalOrder::kRandom, 3);
  auto spread = workload.MakeState(topology);
  sim::ScheduleRequest request{&workload, &arrival};
  scheduler.Schedule(request, spread);

  // Strawman: pure best-fit packing that ignores the blacklist entirely,
  // fed in FIFO order (replicas of a service arrive back to back, which is
  // how a constraint-oblivious packer stacks them on one machine).
  const auto fifo =
      trace::MakeArrivalSequence(workload, trace::ArrivalOrder::kFifo);
  auto packed = workload.MakeState(topology);
  for (cluster::ContainerId c : fifo) {
    cluster::MachineId best = cluster::MachineId::Invalid();
    std::int64_t best_free = 0;
    for (const auto& machine : topology.machines()) {
      if (!packed.Fits(c, machine.id)) continue;
      const std::int64_t free = packed.Free(machine.id).cpu_millis();
      if (!best.valid() || free < best_free) {
        best = machine.id;
        best_free = free;
      }
    }
    if (best.valid()) packed.Deploy(c, best);
  }

  Table table({"placement", "violations", "machines",
               "max replicas sharing a machine",
               "quorum losses over all single-machine failures"});
  for (const auto& [name, state] :
       {std::pair<const char*, const cluster::ClusterState*>{"Aladdin",
                                                             &spread},
        {"packing-only strawman", &packed}}) {
    std::size_t total = 0;
    for (const auto& machine : topology.machines()) {
      total += QuorumLosses(*state, workload, machine.id);
    }
    const auto report = cluster::Audit(*state);
    table.Cell(name)
        .Cell(static_cast<std::int64_t>(report.TotalViolations()))
        .Cell(static_cast<std::int64_t>(state->UsedMachineCount()))
        .Cell(static_cast<std::int64_t>(WorstColocation(*state, workload)))
        .Cell(static_cast<std::int64_t>(total))
        .EndRow();
  }
  table.Print();
  std::printf("\nWith the constraint enforced no machine holds two replicas "
              "of one service, so no single machine failure can cost a "
              "replicated service its quorum.\n");
  const auto report = cluster::Audit(spread);
  return report.TotalViolations() == 0 ? 0 : 1;
}

// The co-design architecture of §IV.C (Fig. 6) running end to end: a
// Kubernetes-style object stream (pods, nodes, deletions) flows through the
// Events Handling Center into the Model Adaptor, and the Resolver drives
// the Aladdin core to emit Bindings — while short-lived batch pods run
// through the traditional task-based path (§IV.D) and complete over time.
//
// The scenario: a production cluster ramps up, a mixed workload arrives in
// waves, a node dies mid-flight, and a flagship service scales up —
// watch the per-tick resolver stats.
//
// Run:  build/examples/k8s_integration
#include <cstdio>

#include "common/table.h"
#include "common/flags.h"
#include "obs/cli.h"
#include "k8s/simulator.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  obs::ObsCli obs_cli(flags, /*with_obs=*/false);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  k8s::ClusterSimulator sim;
  Table log({"tick", "event", "pending", "bound", "migr", "preempt",
             "unsched", "batch done"});
  auto row = [&](const k8s::ResolveStats& s, const char* what) {
    log.Cell(static_cast<std::int64_t>(s.tick))
        .Cell(what)
        .Cell(static_cast<std::int64_t>(s.pending_before))
        .Cell(static_cast<std::int64_t>(s.new_bindings))
        .Cell(static_cast<std::int64_t>(s.migrations))
        .Cell(static_cast<std::int64_t>(s.preemptions))
        .Cell(static_cast<std::int64_t>(s.unschedulable))
        .Cell(sim.completed_tasks())
        .EndRow();
  };

  // t=1: the cluster comes up with 12 nodes; core services deploy.
  auto nodes = sim.AddNodes(12, cluster::ResourceVector::Cores(32, 64),
                            "node", 4, 2);
  k8s::PodSpec frontend;
  frontend.requests = cluster::ResourceVector::Cores(8, 16);
  frontend.priority = 2;
  frontend.anti_affinity_within = true;
  frontend.anti_affinity_apps = {"cache"};
  sim.SubmitDeployment("frontend", 6, frontend);

  k8s::PodSpec cache;
  cache.requests = cluster::ResourceVector::Cores(4, 8);
  cache.priority = 1;
  cache.anti_affinity_within = true;
  sim.SubmitDeployment("cache", 4, cache);
  row(sim.Tick(), "bootstrap: 12 nodes + core services");

  // t=2: nightly ETL lands next to the services.
  sim.SubmitBatchJob("etl", 40, cluster::ResourceVector::Cores(2, 4),
                     /*lifetime_ticks=*/2);
  row(sim.Tick(), "40-task batch job submitted");

  // t=3: a node dies while the batch is running.
  sim.RemoveNode(nodes[3]);
  row(sim.Tick(), "node lost (kubelet gone)");

  // t=4: the ETL finishes; the flagship scales 3x for a product launch
  // (with launch capacity: 18 frontend + 4 cache on mutually exclusive
  // nodes need 22).
  sim.AddNodes(12, cluster::ResourceVector::Cores(32, 64), "launch", 4, 2);
  sim.SubmitDeployment("frontend", 12, frontend);
  row(sim.Tick(), "launch: +12 nodes, +12 frontend replicas");

  // t=5-6: drain and settle.
  row(sim.Tick(), "steady state");
  row(sim.Tick(), "steady state");

  log.Print();

  std::size_t bound = sim.adaptor().BoundPods().size();
  std::size_t pending = sim.adaptor().PendingPods().size();
  std::printf("\nfinal: %zu bound, %zu pending, %lld batch tasks completed, "
              "EHC dispatched %lld events (%lld coalesced away)\n",
              bound, pending, static_cast<long long>(sim.completed_tasks()),
              static_cast<long long>(sim.ehc().dispatched_total()),
              static_cast<long long>(sim.ehc().coalesced_total()));
  return pending == 0 ? 0 : 1;
}

// Quickstart: build a small workload, schedule it with Aladdin, and inspect
// the audited result. This is the 60-second tour of the public API:
//
//   trace::Workload        — applications, containers, constraints
//   cluster::Topology      — machines / racks / sub-clusters
//   core::AladdinScheduler — the paper's scheduler
//   sim::RunExperimentOn   — drive + time + audit one run
//
// Run:  build/examples/quickstart
#include <cstdio>

#include "common/flags.h"
#include "obs/cli.h"
#include "core/scheduler.h"
#include "sim/experiment.h"
#include "sim/report.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  obs::ObsCli obs_cli(flags, /*with_obs=*/false);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  // A toy cluster: 8 machines of 32 CPU / 64 GB across 2 racks.
  const cluster::Topology topology = cluster::Topology::Uniform(
      /*machines=*/8, cluster::ResourceVector::Cores(32, 64),
      /*machines_per_rack=*/4, /*racks_per_subcluster=*/2);

  // Three LLAs, mirroring the paper's Fig. 1 example plus a batch filler:
  //  * "web"   — 4 replicas, high priority, replicas must spread out
  //              (anti-affinity within the application);
  //  * "cache" — 2 replicas, must not share machines with "web"
  //              (anti-affinity across applications);
  //  * "batch" — 10 low-priority single-core containers.
  trace::Workload workload;
  const auto web = workload.AddApplication(
      "web", 4, cluster::ResourceVector::Cores(8, 16), /*priority=*/2,
      /*anti_affinity_within=*/true);
  const auto cache = workload.AddApplication(
      "cache", 2, cluster::ResourceVector::Cores(4, 8), /*priority=*/1,
      /*anti_affinity_within=*/true);
  workload.AddApplication("batch", 10, cluster::ResourceVector::Cores(1, 2));
  workload.AddAntiAffinity(web, cache);

  core::AladdinScheduler scheduler;  // defaults: +IL +DL, weight base 16
  const sim::RunMetrics metrics = sim::RunExperimentOn(
      scheduler, workload, topology, trace::ArrivalOrder::kFifo,
      /*arrival_seed=*/1);

  std::printf("scheduler: %s\n", metrics.scheduler.c_str());
  std::printf("placed %zu / %zu containers on %zu machines\n",
              metrics.audit.placed, metrics.audit.total_containers,
              metrics.used_machines);
  std::printf("constraint violations: %.1f%% (anti-affinity share %.1f%%)\n",
              metrics.audit.ViolationPercent(),
              metrics.audit.AntiAffinityShare());
  std::printf("migrations: %lld, preemptions: %lld\n",
              static_cast<long long>(metrics.migrations),
              static_cast<long long>(metrics.preemptions));

  sim::PrintRunTable({metrics});
  return metrics.audit.TotalViolations() == 0 ? 0 : 1;
}

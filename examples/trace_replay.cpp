// Trace replay CLI: generate (or load) a workload file, replay it through
// any of the four schedulers, and print the audited metrics — the smallest
// end-to-end harness for experimenting with your own traces.
//
// Run:
//   build/examples/trace_replay --scheduler=aladdin --scale=0.05
//   build/examples/trace_replay --save=/tmp/trace.csv            # export
//   build/examples/trace_replay --load=/tmp/trace.csv --scheduler=medea
#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <utility>

#include "baselines/firmament/scheduler.h"
#include "baselines/gokube/scheduler.h"
#include "baselines/medea/scheduler.h"
#include "common/flags.h"
#include "common/log.h"
#include "obs/cli.h"
#include "obs/lifecycle.h"
#include "obs/slo.h"
#include "obs/watchdog.h"
#include "core/scheduler.h"
#include "common/timer.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/arrival.h"
#include "trace/serialize.h"

using namespace aladdin;

namespace {

std::unique_ptr<sim::Scheduler> MakeScheduler(const std::string& name,
                                              std::int64_t reschd,
                                              double medea_c) {
  if (name == "aladdin") return std::make_unique<core::AladdinScheduler>();
  if (name == "gokube") return std::make_unique<baselines::GoKubeScheduler>();
  if (name == "medea") {
    baselines::MedeaOptions options;
    options.weights = {1.0, 1.0, medea_c};
    return std::make_unique<baselines::MedeaScheduler>(options);
  }
  if (name == "firmament" || name == "quincy" || name == "trivial" ||
      name == "octopus") {
    baselines::FirmamentOptions options;
    options.reschd = static_cast<int>(reschd);
    if (name == "trivial") {
      options.cost_model = baselines::FirmamentCostModel::kTrivial;
    } else if (name == "octopus") {
      options.cost_model = baselines::FirmamentCostModel::kOctopus;
    }
    return std::make_unique<baselines::FirmamentScheduler>(options);
  }
  return nullptr;
}

// One-shot replay through AladdinScheduler::ScheduleBatch: the ordered
// arrival is chunked into micro-batches of `batch` containers and solved
// against one warm network (weights prepared once, one Refresh up front).
// Identical to calling Schedule() once per chunk, bar the network-prep
// counters (core/net_syncs, core/weights_cached). Note a chunk size smaller
// than the trace is NOT equivalent to the single whole-trace solve: each
// solve orders its own chunk by Eq. 3–5 weight, so chunk boundaries change
// the global augment order (a chunk covering the whole trace is identical).
// Mirrors sim::RunExperimentOn otherwise.
sim::RunMetrics ReplayBatched(core::AladdinScheduler& scheduler,
                              const trace::Workload& workload,
                              const cluster::Topology& topology,
                              trace::ArrivalOrder order,
                              std::uint64_t arrival_seed,
                              std::size_t batch) {
  const auto arrival =
      trace::MakeArrivalSequence(workload, order, arrival_seed);
  cluster::ClusterState state = workload.MakeState(topology);

  // Build every chunk before any request takes a pointer: growing the
  // outer vector afterwards would invalidate earlier chunks' addresses.
  std::vector<std::vector<cluster::ContainerId>> chunks;
  for (std::size_t i = 0; i < arrival.size(); i += batch) {
    const std::size_t end = std::min(i + batch, arrival.size());
    chunks.emplace_back(arrival.begin() + static_cast<std::ptrdiff_t>(i),
                        arrival.begin() + static_cast<std::ptrdiff_t>(end));
  }
  std::vector<sim::ScheduleRequest> requests(chunks.size());
  for (std::size_t k = 0; k < chunks.size(); ++k) {
    requests[k].workload = &workload;
    requests[k].arrival = &chunks[k];
  }

  WallTimer timer;
  std::vector<sim::ScheduleOutcome> outcomes =
      scheduler.ScheduleBatch(requests, state);
  const double wall = timer.ElapsedSeconds();

  sim::ScheduleOutcome merged;
  for (sim::ScheduleOutcome& outcome : outcomes) {
    merged.unplaced.insert(merged.unplaced.end(), outcome.unplaced.begin(),
                           outcome.unplaced.end());
    merged.unplaced_causes.insert(merged.unplaced_causes.end(),
                                  outcome.unplaced_causes.begin(),
                                  outcome.unplaced_causes.end());
    merged.explored_paths += outcome.explored_paths;
    merged.rounds += outcome.rounds;
    merged.il_prunes += outcome.il_prunes;
    merged.dl_stops += outcome.dl_stops;
    obs::MergePhaseDeltas(merged.phases, outcome.phases);
  }

  if (!state.VerifyResourceInvariant()) {
    LOG_ERROR << scheduler.name()
              << " corrupted cluster state (resource invariant violated)";
  }
  return sim::ComputeRunMetrics(scheduler.name(), state, std::move(merged),
                                wall);
}

trace::ArrivalOrder ParseOrder(const std::string& name) {
  if (name == "fifo") return trace::ArrivalOrder::kFifo;
  if (name == "chp") return trace::ArrivalOrder::kHighPriorityFirst;
  if (name == "clp") return trace::ArrivalOrder::kLowPriorityFirst;
  if (name == "cla") return trace::ArrivalOrder::kManyConflictsFirst;
  if (name == "csa") return trace::ArrivalOrder::kFewConflictsFirst;
  return trace::ArrivalOrder::kRandom;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  auto& scheduler_name = flags.String(
      "scheduler", "aladdin",
      "aladdin | quincy | trivial | octopus | medea | gokube");
  auto& scale = flags.Double("scale", 0.05, "generated workload scale");
  auto& seed = flags.Int64("seed", 42, "trace seed");
  auto& machines = flags.Int64("machines", 0, "cluster size (0 = scaled)");
  auto& order_name = flags.String(
      "order", "random", "fifo | random | chp | clp | cla | csa");
  auto& reschd = flags.Int64("reschd", 8, "Firmament reschd(i)");
  auto& medea_c = flags.Double("medea_c", 0.0, "Medea violation tolerance");
  auto& batch = flags.Int64(
      "batch", 0,
      "aladdin only: replay the arrival as micro-batches of this many "
      "containers through one warm-started solve per batch (0 = one "
      "whole-trace solve; smaller batches re-rank arrivals per chunk)");
  auto& save = flags.String("save", "", "write the workload to a file, exit");
  auto& load = flags.String("load", "", "load a workload file instead");
  auto& cluster_file = flags.String(
      "cluster", "", "load a topology file (see SaveTopology) instead of the "
                     "scaled homogeneous cluster");
  obs::ObsCli obs_cli(flags);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  trace::Workload workload;
  if (!load.empty()) {
    if (!trace::LoadWorkloadFromFile(load, workload)) {
      LOG_ERROR << "failed to load " << load;
      return 1;
    }
  } else {
    workload = sim::MakeBenchWorkload(scale, static_cast<std::uint64_t>(seed));
  }
  if (!save.empty()) {
    if (!trace::SaveWorkloadToFile(workload, save)) return 1;
    std::printf("wrote %zu applications / %zu containers to %s\n",
                workload.application_count(), workload.container_count(),
                save.c_str());
    return 0;
  }

  auto scheduler = MakeScheduler(scheduler_name, reschd, medea_c);
  if (!scheduler) {
    LOG_ERROR << "unknown scheduler: " << scheduler_name;
    return 1;
  }

  const trace::ArrivalOrder order = ParseOrder(order_name);
  cluster::Topology topology;
  if (!cluster_file.empty()) {
    if (!trace::LoadTopologyFromFile(cluster_file, topology)) {
      LOG_ERROR << "failed to load cluster " << cluster_file;
      return 1;
    }
  } else {
    topology = trace::MakeAlibabaCluster(
        machines > 0 ? static_cast<std::size_t>(machines)
                     : sim::BenchMachineCount(scale));
  }

  if (batch > 0 && scheduler_name != "aladdin") {
    LOG_ERROR << "--batch requires --scheduler=aladdin (the baselines have "
                 "no incremental entry point)";
    return 1;
  }

  std::printf("replaying %zu containers (%zu apps) onto %zu machines with "
              "%s, order %s\n",
              workload.container_count(), workload.application_count(),
              topology.machine_count(), scheduler->name().c_str(),
              trace::ArrivalOrderName(order));
  const sim::RunMetrics metrics =
      batch > 0
          ? ReplayBatched(static_cast<core::AladdinScheduler&>(*scheduler),
                          workload, topology, order, 1,
                          static_cast<std::size_t>(batch))
          : sim::RunExperimentOn(*scheduler, workload, topology, order, 1);
  sim::PrintRunTable({metrics});

  // One-shot replay: the outcome's terminal diagnosis is the cause
  // histogram (every unplaced container carries exactly one cause).
  {
    std::array<std::int64_t, static_cast<std::size_t>(obs::Cause::kCount)>
        totals{};
    const auto& causes = metrics.outcome.unplaced_causes;
    for (const obs::Cause cause : causes) {
      ++totals[static_cast<std::size_t>(cause)];
    }
    std::vector<std::pair<obs::Cause, std::int64_t>> counts;
    for (std::size_t i = 0; i < totals.size(); ++i) {
      if (totals[i] > 0) {
        counts.emplace_back(static_cast<obs::Cause>(i), totals[i]);
      }
    }
    if (!counts.empty()) {
      std::printf("\nunplaced cause histogram:\n");
      sim::PrintCauseTable(counts);
    }
  }

  // Admission SLO in one-shot form: every container arrives at tick 0, a
  // placed container binds within the same tick (wait 0), and a give-up
  // never binds at all — charged as a violation by observing its span past
  // the objective window. The per-app table therefore reads as "share of
  // the app admitted at all", the degenerate case of bench_online's
  // streaming attainment table.
  {
    obs::LifecycleLedger ledger;
    obs::SloEngine slo;
    slo.BeginTick(0);
    for (const cluster::Application& app : workload.applications()) {
      slo.RegisterApp(app.id.value(), app.name);
    }
    std::vector<bool> unplaced(workload.container_count(), false);
    for (const cluster::ContainerId c : metrics.outcome.unplaced) {
      unplaced[static_cast<std::size_t>(c.value())] = true;
    }
    for (const cluster::Container& c : workload.containers()) {
      ledger.OnArrival(c.id.value(), c.app.value(), /*tick=*/0);
      obs::LifecycleSpan* span = ledger.MutableSpan(c.id.value());
      if (unplaced[static_cast<std::size_t>(c.id.value())]) {
        slo.ObservePending(*span, slo.objective().wait_ticks);
      } else {
        const std::int64_t wait =
            ledger.OnPlaced(c.id.value(), /*machine=*/-1, /*shard=*/-1,
                            /*tick=*/0);
        slo.OnAdmitted(*span, wait);
      }
    }
    std::printf(
        "\nadmission SLO (one-shot: placed = wait 0, unplaced = violation):\n");
    sim::PrintSloTable(slo.Snapshot(32));

    // One-shot watchdog (--watchdog): a replay has no tick stream, so the
    // windowed detectors degenerate to a single sample. Only the SLO burn
    // detector is meaningful here — both windows shrink to one tick and the
    // hysteresis to one breach — judging "did this replay burn the
    // admission error budget" (placed = good, unplaced = bad). The column
    // layout matches bench_online's streaming alert table.
    if (obs_cli.watchdog_requested()) {
      obs::WatchdogOptions wd;
      wd.open_after = 1;
      wd.resolve_after = 1;
      wd.burn_fast_window = 1;
      wd.burn_slow_window = 1;
      wd.pending_drift = false;
      wd.app_flapping = false;
      wd.shard_imbalance = false;
      wd.solve_regression = false;
      wd.cause_mix = false;
      obs::Watchdog watchdog(wd);
      obs::WatchdogTickInput input;
      input.tick = 0;
      input.slo_good = static_cast<std::int64_t>(metrics.audit.placed);
      input.slo_bad = static_cast<std::int64_t>(metrics.audit.unplaced);
      input.slo_budget_bp = slo.budget_bp();
      watchdog.ObserveTick(input);
      std::printf("\nwatchdog alert stream (one-shot burn check):\n");
      sim::PrintAlertTable(watchdog.Snapshot());
    }
  }

  // --timeseries degenerates to a single sample in one-shot mode; the
  // column layout matches bench_online's per-tick stream.
  if (!obs_cli.timeseries_path().empty()) {
    sim::TimeSeriesWriter timeseries(obs_cli.timeseries_path());
    if (!timeseries.ok()) return 1;
    sim::TimeSeriesPoint point;
    point.tick = 0;
    point.pending = workload.container_count();
    point.bindings = metrics.audit.placed;
    point.unschedulable = metrics.audit.unplaced;
    point.migrations = metrics.migrations;
    point.preemptions = metrics.preemptions;
    point.used_machines = metrics.used_machines;
    point.avg_util_pct = metrics.util.avg_share * 100.0;
    point.frag_pct =
        metrics.used_machines > 0 ? 100.0 - point.avg_util_pct : 0.0;
    point.wall_seconds = metrics.wall_seconds;
    point.phase_seconds = obs::ExclusiveSeconds(metrics.outcome.phases);
    if (!timeseries.Append(point)) {
      LOG_ERROR << "failed writing " << obs_cli.timeseries_path();
      return 1;
    }
    std::printf("timeseries written to %s\n",
                obs_cli.timeseries_path().c_str());
  }

  if (!obs_cli.Finish()) return 1;
  return 0;
}

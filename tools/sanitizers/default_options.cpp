// Baked-in sanitizer runtime defaults.
//
// Compiled into every executable of a sanitizer build (the
// aladdin_sanitizer_opts object library — see the top-level CMakeLists).
// The sanitizer runtimes look these weak hooks up at startup, so ctest runs
// pick up the checked-in suppression files without any environment
// plumbing; ASAN_OPTIONS / TSAN_OPTIONS etc. still override per-run.
// ALADDIN_SUPP_DIR is injected by CMake and points at this directory.

#if defined(__SANITIZE_ADDRESS__)
extern "C" const char* __asan_default_options() {
  return "detect_leaks=1:strict_string_checks=1:"
         "suppressions=" ALADDIN_SUPP_DIR "/asan.supp";
}
extern "C" const char* __lsan_default_options() {
  return "suppressions=" ALADDIN_SUPP_DIR "/lsan.supp";
}
extern "C" const char* __ubsan_default_options() {
  return "print_stacktrace=1:suppressions=" ALADDIN_SUPP_DIR "/ubsan.supp";
}
#endif

#if defined(__SANITIZE_THREAD__)
extern "C" const char* __tsan_default_options() {
  return "halt_on_error=1:second_deadlock_stack=1:"
         "suppressions=" ALADDIN_SUPP_DIR "/tsan.supp";
}
#endif

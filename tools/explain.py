#!/usr/bin/env python3
"""Answer "why did the scheduler do that?" from a decision journal.

Input is the JSONL stream written by --journal=FILE on the bench binaries
(or the <sink>.crash flight-recorder dump a failed ALADDIN_CHECK leaves
behind). Each line is one record:

  {"seq":N,"tick":T,"kind":"place|reject|migrate|preempt|unplaced|event",
   "cause":"...","container":C,"machine":M,"other":O,"detail":D}

Runs under core::ShardedScheduler additionally stamp `"shard":S` on every
record a shard solver emitted (absent / -1 on unsharded and K=1 runs —
those journals are byte-identical to pre-sharding ones).

The journal is seq-ordered and complete (emission sites cover every
placement, rejection, migration, preemption and terminal give-up), so a
container's fate is decided by its *last terminal* record: place/migrate
mean it ended up on `machine`; preempt/unplaced mean it ended up pending.
Rejections and events are context, not verdicts.

Modes (default: summary of the whole journal):

  --why CONTAINER   full decision history of one container, then the verdict
  --why-unplaced    every container whose final state is unplaced, grouped
                    by terminal cause — each one must carry a structured
                    cause (the acceptance bar: no kNone, and Aladdin runs
                    show no catch-alls)
  --machine ID      everything that happened on one machine: placements,
                    arrivals/departures via migration, preemptions
  --shard S         restrict any mode to records stamped with shard S
                    (composes with the modes above; S=-1 selects records
                    emitted outside a shard solver)

Usage:
  tools/explain.py RUN.journal.jsonl --why 1234
  tools/explain.py RUN.journal.jsonl --why-unplaced
  tools/explain.py RUN.journal.jsonl --machine 17
  tools/explain.py RUN.journal.jsonl --shard 3 --why-unplaced
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter, defaultdict
from pathlib import Path

TERMINAL_PLACED = {"place", "migrate"}
TERMINAL_PENDING = {"preempt", "unplaced"}

# Human phrasings for the closed cause vocabulary (obs/journal.h). Unknown
# names pass through verbatim so a newer journal still explains itself.
CAUSE_TEXT = {
    "none": "no cause recorded",
    "admitted_direct": "admissible path found by the augmentation pass",
    "admitted_after_repair": "admitted by the migration/preemption repair "
                             "engine",
    "short_lived_best_fit": "placed by the short-lived task scheduler "
                            "(best-fit)",
    "capacity_exhausted_cpu": "no machine had the CPU headroom",
    "capacity_exhausted_mem": "CPU-feasible machines lacked memory",
    "anti_affinity_intra_app": "blocked everywhere by its own application's "
                               "anti-affinity",
    "anti_affinity_inter_app": "blocked everywhere by conflicting "
                               "applications",
    "no_admissible_path": "mixed/unknown blockers (defensive fallback)",
    "repair_attempt_budget": "repair gave up after its per-container "
                             "attempt budget",
    "migrated_for_repair": "moved aside to admit a blocked container",
    "migrated_for_rebalance": "moved by the compaction pass",
    "preempted_by_priority": "evicted by a strictly higher-priority "
                             "container",
    "depth_limit_stop": "searches cut short by the depth limit (DL)",
    "isomorphism_prune": "searches skipped by isomorphism limiting (IL)",
    "pod_retired": "pod deleted / binding retired",
    "baseline_unplaced": "baseline scheduler gave up (no diagnosis)",
}


def load_journal(path: Path) -> list[dict]:
    records = []
    with path.open(encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(f"explain: {path}:{lineno}: {error}")
            records.append(record)
    records.sort(key=lambda r: r.get("seq", 0))
    return records


def describe(record: dict) -> str:
    kind = record.get("kind", "?")
    cause = record.get("cause", "?")
    text = CAUSE_TEXT.get(cause, cause)
    container = record.get("container", -1)
    machine = record.get("machine", -1)
    other = record.get("other", -1)
    detail = record.get("detail", 0)
    if kind == "place":
        return f"placed on machine {machine} — {text}"
    if kind == "reject":
        extra = f" (budget {detail})" if cause == "repair_attempt_budget" \
            else ""
        return f"rejected — {text}{extra}"
    if kind == "migrate":
        return f"migrated machine {other} -> {machine} — {text}"
    if kind == "preempt":
        return (f"preempted off machine {machine} by container {other} — "
                f"{text}")
    if kind == "unplaced":
        return f"gave up — {text}"
    if kind == "event":
        if cause in ("depth_limit_stop", "isomorphism_prune"):
            return f"{text}: {detail}"
        if cause == "pod_retired":
            return f"container {container} retired — {text}"
        return f"{cause}: detail={detail}"
    return f"{kind} — {text}"


def final_states(records: list[dict]) -> dict[int, dict]:
    """container -> its last terminal record (seq order decides)."""
    last: dict[int, dict] = {}
    for record in records:
        container = record.get("container", -1)
        if container < 0:
            continue
        if record.get("kind") in TERMINAL_PLACED | TERMINAL_PENDING:
            last[container] = record
    return last


def cmd_why(records: list[dict], container: int) -> int:
    history = [r for r in records if r.get("container") == container
               or (r.get("kind") == "preempt" and r.get("other") == container)]
    if not history:
        print(f"container {container}: no journal records")
        return 1
    print(f"container {container}: {len(history)} decision(s)")
    for record in history:
        role = ""
        if record.get("kind") == "preempt" and \
                record.get("container") != container:
            role = f" [as aggressor admitting onto machine " \
                   f"{record.get('machine', -1)}]"
        print(f"  seq {record.get('seq'):>8}  tick {record.get('tick'):>5}  "
              f"{describe(record)}{role}")
    terminal = final_states(history).get(container)
    if terminal is None:
        print("  verdict: no terminal record (journal truncated?)")
        return 1
    if terminal.get("kind") in TERMINAL_PLACED:
        print(f"  verdict: running on machine {terminal.get('machine')}")
    else:
        cause = terminal.get("cause", "?")
        print(f"  verdict: unplaced — {CAUSE_TEXT.get(cause, cause)}")
    return 0


def cmd_why_unplaced(records: list[dict]) -> int:
    last = final_states(records)
    unplaced = {c: r for c, r in last.items()
                if r.get("kind") in TERMINAL_PENDING}
    if not unplaced:
        print("every journalled container ended up placed")
        return 0
    by_cause: dict[str, list[int]] = defaultdict(list)
    for container, record in sorted(unplaced.items()):
        by_cause[record.get("cause", "?")].append(container)
    print(f"{len(unplaced)} container(s) finished unplaced:")
    status = 0
    for cause, containers in sorted(by_cause.items(),
                                    key=lambda kv: -len(kv[1])):
        share = 100.0 * len(containers) / len(unplaced)
        print(f"  {cause:<28} {len(containers):>6}  ({share:5.1f}%)  "
              f"{CAUSE_TEXT.get(cause, cause)}")
        sample = ", ".join(str(c) for c in containers[:8])
        ellipsis = ", ..." if len(containers) > 8 else ""
        print(f"    containers: {sample}{ellipsis}")
        if cause == "none":
            status = 1  # a give-up without a diagnosis is a bug upstream
    return status


def cmd_machine(records: list[dict], machine: int) -> int:
    history = [r for r in records
               if r.get("machine") == machine
               or (r.get("kind") == "migrate" and r.get("other") == machine)]
    if not history:
        print(f"machine {machine}: no journal records")
        return 1
    print(f"machine {machine}: {len(history)} decision(s)")
    residents: set[int] = set()
    for record in history:
        kind = record.get("kind")
        container = record.get("container", -1)
        note = describe(record)
        if kind == "place" and record.get("machine") == machine:
            residents.add(container)
        elif kind == "migrate":
            if record.get("machine") == machine:
                residents.add(container)
                note = (f"arrived from machine {record.get('other')} — "
                        f"{CAUSE_TEXT.get(record.get('cause', '?'), '?')}")
            else:
                residents.discard(container)
                note = (f"departed to machine {record.get('machine')} — "
                        f"{CAUSE_TEXT.get(record.get('cause', '?'), '?')}")
        elif kind == "preempt" and record.get("machine") == machine:
            residents.discard(container)
        print(f"  seq {record.get('seq'):>8}  tick {record.get('tick'):>5}  "
              f"container {container:>6}  {note}")
    print(f"  journal-visible residents at end: "
          f"{sorted(residents) if residents else 'none'}")
    return 0


def cmd_summary(records: list[dict]) -> int:
    kinds = Counter(r.get("kind", "?") for r in records)
    causes = Counter(r.get("cause", "?") for r in records
                     if r.get("kind") != "event")
    last = final_states(records)
    placed = sum(1 for r in last.values()
                 if r.get("kind") in TERMINAL_PLACED)
    ticks = {r.get("tick", 0) for r in records}
    print(f"{len(records)} records over {len(ticks)} tick(s)")
    print("by kind: " + ", ".join(f"{k}={n}"
                                  for k, n in sorted(kinds.items())))
    print(f"final states: {placed} placed, {len(last) - placed} unplaced")
    shards = Counter(r["shard"] for r in records
                     if r.get("shard", -1) >= 0)
    if shards:
        print("by shard: " + ", ".join(f"{s}={n}"
                                       for s, n in sorted(shards.items())))
    print("top causes:")
    for cause, count in causes.most_common(8):
        print(f"  {cause:<28} {count:>8}  {CAUSE_TEXT.get(cause, cause)}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("journal", type=Path,
                        help="JSONL journal (--journal output or a "
                             ".crash flight-recorder dump)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--why", type=int, metavar="CONTAINER",
                       help="decision history + verdict for one container")
    group.add_argument("--why-unplaced", action="store_true",
                       help="group finally-unplaced containers by cause")
    group.add_argument("--machine", type=int, metavar="ID",
                       help="placements/arrivals/departures on one machine")
    parser.add_argument("--shard", type=int, metavar="S",
                        help="only records stamped with this shard id "
                             "(-1 = emitted outside a shard solver)")
    args = parser.parse_args()

    records = load_journal(args.journal)
    if args.shard is not None:
        records = [r for r in records
                   if r.get("shard", -1) == args.shard]
        if not records:
            print(f"explain: {args.journal}: no records for shard "
                  f"{args.shard}", file=sys.stderr)
            return 1
    if not records:
        print(f"explain: {args.journal}: empty journal", file=sys.stderr)
        return 1
    if args.why is not None:
        return cmd_why(records, args.why)
    if args.why_unplaced:
        return cmd_why_unplaced(records)
    if args.machine is not None:
        return cmd_machine(records, args.machine)
    return cmd_summary(records)


if __name__ == "__main__":
    sys.exit(main())

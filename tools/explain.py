#!/usr/bin/env python3
"""Answer "why did the scheduler do that?" from a decision journal.

Input is the JSONL stream written by --journal=FILE on the bench binaries
(or the <sink>.crash flight-recorder dump a failed ALADDIN_CHECK leaves
behind). Each line is one record:

  {"seq":N,"tick":T,"kind":"place|reject|migrate|preempt|unplaced|event",
   "cause":"...","container":C,"machine":M,"other":O,"detail":D}

Runs under core::ShardedScheduler additionally stamp `"shard":S` on every
record a shard solver emitted (absent / -1 on unsharded and K=1 runs —
those journals are byte-identical to pre-sharding ones).

The journal is seq-ordered and complete (emission sites cover every
placement, rejection, migration, preemption and terminal give-up), so a
container's fate is decided by its *last terminal* record: place/migrate
mean it ended up on `machine`; preempt/unplaced mean it ended up pending.
Rejections and events are context, not verdicts.

Modes (default: summary of the whole journal):

  --why CONTAINER   full decision history of one container, then the verdict
  --why-unplaced    every container whose final state is unplaced, grouped
                    by terminal cause — each one must carry a structured
                    cause (the acceptance bar: no kNone, and Aladdin runs
                    show no catch-alls)
  --pod ID          lifecycle timeline of one container (obs/lifecycle.h
                    spans): per-epoch arrival -> shard hops -> attempts ->
                    placement/pending verdict, with every waited tick
                    attributed to the cause of that tick's failed attempt
                    (the attribution must account for 100% of the wait)
  --app SELECTOR    the same span accounting aggregated over one
                    application's pods; SELECTOR is a numeric app id, or a
                    name resolved through --slo-report (the JSON written by
                    bench_online --slo_report / served at /slo)
  --machine ID      everything that happened on one machine: placements,
                    arrivals/departures via migration, preemptions
  --alerts          watchdog alert timeline (--watchdog runs): one block
                    per alert id with its open/resolve transitions and a
                    cross-link to the mode that drills into the subject
                    (app_flapping -> --app, shard_imbalance -> --shard)
  --shard S         restrict any mode to records stamped with shard S
                    (composes with the modes above; S=-1 selects records
                    emitted outside a shard solver)

Usage:
  tools/explain.py RUN.journal.jsonl --why 1234
  tools/explain.py RUN.journal.jsonl --why-unplaced
  tools/explain.py RUN.journal.jsonl --pod 1234
  tools/explain.py RUN.journal.jsonl --app batch-3 --slo-report RUN.slo.json
  tools/explain.py RUN.journal.jsonl --machine 17
  tools/explain.py RUN.journal.jsonl --shard 3 --why-unplaced
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter, defaultdict
from pathlib import Path

TERMINAL_PLACED = {"place", "migrate"}
TERMINAL_PENDING = {"preempt", "unplaced"}

# Human phrasings for the closed cause vocabulary (obs/journal.h). Unknown
# names pass through verbatim so a newer journal still explains itself.
CAUSE_TEXT = {
    "none": "no cause recorded",
    "admitted_direct": "admissible path found by the augmentation pass",
    "admitted_after_repair": "admitted by the migration/preemption repair "
                             "engine",
    "short_lived_best_fit": "placed by the short-lived task scheduler "
                            "(best-fit)",
    "capacity_exhausted_cpu": "no machine had the CPU headroom",
    "capacity_exhausted_mem": "CPU-feasible machines lacked memory",
    "anti_affinity_intra_app": "blocked everywhere by its own application's "
                               "anti-affinity",
    "anti_affinity_inter_app": "blocked everywhere by conflicting "
                               "applications",
    "no_admissible_path": "mixed/unknown blockers (defensive fallback)",
    "repair_attempt_budget": "repair gave up after its per-container "
                             "attempt budget",
    "migrated_for_repair": "moved aside to admit a blocked container",
    "migrated_for_rebalance": "moved by the compaction pass",
    "preempted_by_priority": "evicted by a strictly higher-priority "
                             "container",
    "depth_limit_stop": "searches cut short by the depth limit (DL)",
    "isomorphism_prune": "searches skipped by isomorphism limiting (IL)",
    "pod_retired": "pod deleted / binding retired",
    "baseline_unplaced": "baseline scheduler gave up (no diagnosis)",
    "pod_arrived": "lifecycle span opened (container first seen pending)",
    "shard_routed": "routed to a shard by the coordinator",
    "shard_spilled": "re-routed to another shard by a spill round",
    "slo_violated": "pending-age crossed the admission SLO objective",
    "alert_opened": "watchdog opened a typed health alert",
    "alert_resolved": "watchdog resolved a health alert (signal cleared)",
}

# Closed AlertKind vocabulary (obs/watchdog.h); alert_opened/alert_resolved
# records carry the kind as an index in `machine` and the alert id in
# `container` — an id space separate from the pod/container ids, so the
# per-container modes below skip alert records.
ALERT_KINDS = ("slo_burn_rate", "pending_age_drift", "app_flapping",
               "shard_imbalance", "solve_regression", "cause_mix_shift")
ALERT_CAUSES = {"alert_opened", "alert_resolved"}


def alert_kind_name(index: int) -> str:
    return ALERT_KINDS[index] if 0 <= index < len(ALERT_KINDS) \
        else f"kind?{index}"


def load_journal(path: Path) -> list[dict]:
    records = []
    with path.open(encoding="utf-8") as stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise SystemExit(f"explain: {path}:{lineno}: {error}")
            records.append(record)
    records.sort(key=lambda r: r.get("seq", 0))
    return records


def describe(record: dict) -> str:
    kind = record.get("kind", "?")
    cause = record.get("cause", "?")
    text = CAUSE_TEXT.get(cause, cause)
    container = record.get("container", -1)
    machine = record.get("machine", -1)
    other = record.get("other", -1)
    detail = record.get("detail", 0)
    if kind == "place":
        return f"placed on machine {machine} — {text}"
    if kind == "reject":
        extra = f" (budget {detail})" if cause == "repair_attempt_budget" \
            else ""
        return f"rejected — {text}{extra}"
    if kind == "migrate":
        return f"migrated machine {other} -> {machine} — {text}"
    if kind == "preempt":
        return (f"preempted off machine {machine} by container {other} — "
                f"{text}")
    if kind == "unplaced":
        return f"gave up — {text}"
    if kind == "event":
        if cause in ("depth_limit_stop", "isomorphism_prune"):
            return f"{text}: {detail}"
        if cause == "pod_retired":
            return f"container {container} retired — {text}"
        if cause == "pod_arrived":
            return f"arrived (app {other}, epoch {detail})"
        if cause == "shard_routed":
            return f"routed to shard {other} (round {detail})"
        if cause == "shard_spilled":
            return f"spilled to shard {other} (spill round {detail})"
        if cause == "slo_violated":
            return f"admission SLO violated at pending-age {detail} " \
                   f"(app {other})"
        if cause == "alert_opened":
            return (f"alert {container} opened: {alert_kind_name(machine)} "
                    f"on subject {other} (observed {detail})")
        if cause == "alert_resolved":
            return (f"alert {container} resolved: {alert_kind_name(machine)} "
                    f"on subject {other} after {detail} tick(s)")
        return f"{cause}: detail={detail}"
    return f"{kind} — {text}"


def final_states(records: list[dict]) -> dict[int, dict]:
    """container -> its last terminal record (seq order decides)."""
    last: dict[int, dict] = {}
    for record in records:
        container = record.get("container", -1)
        if container < 0:
            continue
        if record.get("kind") in TERMINAL_PLACED | TERMINAL_PENDING:
            last[container] = record
    return last


def cmd_why(records: list[dict], container: int) -> int:
    history = [r for r in records
               if r.get("cause") not in ALERT_CAUSES
               and (r.get("container") == container
                    or (r.get("kind") == "preempt"
                        and r.get("other") == container))]
    if not history:
        print(f"container {container}: no journal records")
        return 1
    print(f"container {container}: {len(history)} decision(s)")
    for record in history:
        role = ""
        if record.get("kind") == "preempt" and \
                record.get("container") != container:
            role = f" [as aggressor admitting onto machine " \
                   f"{record.get('machine', -1)}]"
        print(f"  seq {record.get('seq'):>8}  tick {record.get('tick'):>5}  "
              f"{describe(record)}{role}")
    terminal = final_states(history).get(container)
    if terminal is None:
        print("  verdict: no terminal record (journal truncated?)")
        return 1
    if terminal.get("kind") in TERMINAL_PLACED:
        print(f"  verdict: running on machine {terminal.get('machine')}")
    else:
        cause = terminal.get("cause", "?")
        print(f"  verdict: unplaced — {CAUSE_TEXT.get(cause, cause)}")
    return 0


def split_epochs(history: list[dict]) -> list[list[dict]]:
    """Splits one pod's records at each pod_arrived event: one sub-list per
    lifecycle epoch. A leading sub-list without an arrival head collects
    records from journals that predate the lifecycle ledger."""
    epochs: list[list[dict]] = []
    current: list[dict] = []
    for record in history:
        if record.get("kind") == "event" and \
                record.get("cause") == "pod_arrived":
            if current:
                epochs.append(current)
            current = [record]
        else:
            current.append(record)
    if current:
        epochs.append(current)
    return epochs


def attribute_wait(history: list[dict], arrival: int,
                   end: int) -> Counter:
    """Charges every waited tick in [arrival, end) to the cause of the
    pod's last reject/unplaced record at that tick. The resolver journals
    a failed-attempt record for every tick a pod stays pending, so the
    per-cause tick counts sum to the full wait. Scans the pod's whole
    history, not one epoch's slice: a same-tick preempt-and-reopen lands
    the failed attempt just before the new epoch's arrival event in seq
    order, but epoch windows never overlap so each tick is charged once."""
    cause_by_tick: dict[int, str] = {}
    for record in history:
        tick = record.get("tick", -1)
        if record.get("kind") in ("reject", "unplaced") and \
                arrival <= tick < end:
            cause_by_tick[tick] = record.get("cause", "?")
    return Counter(cause_by_tick.values())


def epoch_placement(epoch: list[dict]) -> dict | None:
    """The record that first bound this epoch's pod, if any. Rebuild-mode
    journals re-emit a place per tick for bound pods; the first one is the
    real admission."""
    for record in epoch:
        if record.get("kind") == "place":
            return record
    for record in epoch:
        if record.get("kind") == "migrate":
            return record
    return None


def print_attribution(counts: Counter, wait: int, indent: str) -> bool:
    """Prints the per-cause wait breakdown; True when every waited tick is
    accounted for (the --pod acceptance bar)."""
    accounted = sum(counts.values())
    for cause, ticks in counts.most_common():
        print(f"{indent}{cause:<28} {ticks:>6} tick(s)  "
              f"({100.0 * ticks / wait:5.1f}%)  "
              f"{CAUSE_TEXT.get(cause, cause)}")
    print(f"{indent}-> {100.0 * accounted / wait:.1f}% of the wait "
          f"accounted to attempts")
    return accounted == wait


def cmd_pod(records: list[dict], pod: int) -> int:
    history = [r for r in records if r.get("container") == pod
               and r.get("cause") not in ALERT_CAUSES]
    if not history:
        print(f"pod {pod}: no journal records")
        return 1
    epochs = split_epochs(history)
    eof_tick = max(r.get("tick", 0) for r in records)
    print(f"pod {pod}: {len(history)} record(s), {len(epochs)} epoch(s)")
    status = 0
    for epoch in epochs:
        head = epoch[0]
        arrived = head.get("kind") == "event" and \
            head.get("cause") == "pod_arrived"
        if arrived:
            arrival = head.get("tick", 0)
            print(f"epoch {head.get('detail')}: arrived tick {arrival} "
                  f"(app {head.get('other')})")
        else:
            arrival = min(r.get("tick", 0) for r in epoch)
            print("epoch ?: records before the first arrival event "
                  "(journal predates the lifecycle ledger)")
        for record in epoch:
            print(f"  seq {record.get('seq'):>8}  "
                  f"tick {record.get('tick'):>5}  {describe(record)}")
        hops = [r for r in epoch if r.get("kind") == "event" and
                r.get("cause") in ("shard_routed", "shard_spilled")]
        if hops:
            path = " -> ".join(str(r.get("other")) for r in hops)
            spills = sum(1 for r in hops
                         if r.get("cause") == "shard_spilled")
            print(f"  shard hops: {path} ({spills} spill(s))")
        placed = epoch_placement(epoch)
        if placed is not None:
            end = placed.get("tick", arrival)
            print(f"  verdict: placed on machine {placed.get('machine')} "
                  f"at tick {end} (wait {end - arrival} tick(s))")
        else:
            end = eof_tick + 1
            print(f"  verdict: still pending at end of journal "
                  f"(age {end - arrival} tick(s))")
        wait = end - arrival
        if wait > 0:
            print(f"  wait attribution ({wait} tick(s)):")
            if not print_attribution(attribute_wait(history, arrival, end),
                                     wait, "    "):
                status = 1
    apps = {e[0].get("other") for e in epochs
            if e[0].get("kind") == "event"
            and e[0].get("cause") == "pod_arrived"}
    flapping = [r for app in sorted(apps)
                for r in flapping_alerts_for_app(records, app)]
    if flapping:
        print(f"watchdog: this pod's app was flagged as flapping — "
              f"{len(flapping)} alert(s), see --alerts")
    return status


def cmd_app(records: list[dict], selector: str,
            slo_report: Path | None) -> int:
    app: int | None = None
    if selector.lstrip("-").isdigit():
        app = int(selector)
    elif slo_report is not None:
        try:
            report = json.loads(slo_report.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"explain: {slo_report}: {error}", file=sys.stderr)
            return 1
        for row in report.get("apps", []):
            if row.get("name") == selector:
                app = row.get("app")
                break
    if app is None:
        print(f"explain: cannot resolve app {selector!r} — pass a numeric "
              f"app id, or --slo-report FILE (bench_online --slo_report "
              f"output; only its listed worst apps are resolvable by name)",
              file=sys.stderr)
        return 1
    pods = sorted({r.get("container") for r in records
                   if r.get("kind") == "event"
                   and r.get("cause") == "pod_arrived"
                   and r.get("other") == app})
    if not pods:
        print(f"app {app}: no lifecycle spans in this journal")
        return 1
    pod_set = set(pods)
    by_pod: dict[int, list[dict]] = defaultdict(list)
    for record in records:
        if record.get("container") in pod_set and \
                record.get("cause") not in ALERT_CAUSES:
            by_pod[record.get("container")].append(record)
    eof_tick = max(r.get("tick", 0) for r in records)
    waits: list[int] = []
    pending = 0
    cause_ticks: Counter = Counter()
    lines: list[str] = []
    for pod in pods:
        for epoch in split_epochs(by_pod[pod]):
            head = epoch[0]
            if not (head.get("kind") == "event" and
                    head.get("cause") == "pod_arrived"):
                continue
            arrival = head.get("tick", 0)
            placed = epoch_placement(epoch)
            if placed is not None:
                end = placed.get("tick", arrival)
                waits.append(end - arrival)
                verdict = (f"placed tick {end} on machine "
                           f"{placed.get('machine')} "
                           f"(wait {end - arrival})")
            else:
                end = eof_tick + 1
                pending += 1
                verdict = f"still pending (age {end - arrival})"
            cause_ticks.update(attribute_wait(by_pod[pod], arrival, end))
            lines.append(f"  pod {pod:>6}  epoch {head.get('detail')}  "
                         f"arrived tick {arrival:>5}  {verdict}")
    print(f"app {app}: {len(pods)} pod(s), {len(waits) + pending} "
          f"lifecycle span(s) — {len(waits)} admitted, {pending} pending")
    limit = 32
    for line in lines[:limit]:
        print(line)
    if len(lines) > limit:
        print(f"  ... ({len(lines) - limit} more spans)")
    if waits:
        ranked = sorted(waits)
        pick = lambda q: ranked[min(len(ranked) - 1,  # noqa: E731
                                    int(q * len(ranked)))]
        print(f"  admission wait ticks: p50={pick(0.50)} p99={pick(0.99)} "
              f"max={ranked[-1]}")
    total = sum(cause_ticks.values())
    if total > 0:
        print(f"  waited ticks by cause ({total} total):")
        for cause, ticks in cause_ticks.most_common():
            print(f"    {cause:<28} {ticks:>6}  "
                  f"({100.0 * ticks / total:5.1f}%)")
    flapping = flapping_alerts_for_app(records, app)
    if flapping:
        opened_at = ", ".join(str(r.get("tick")) for r in flapping)
        print(f"  watchdog: app_flapping alert(s) opened at tick(s) "
              f"{opened_at} — see --alerts")
    return 0


def alert_records(records: list[dict]) -> list[dict]:
    return [r for r in records if r.get("kind") == "event"
            and r.get("cause") in ALERT_CAUSES]


def flapping_alerts_for_app(records: list[dict], app: int) -> list[dict]:
    """alert_opened records of kind app_flapping whose subject is `app`."""
    flap = ALERT_KINDS.index("app_flapping")
    return [r for r in alert_records(records)
            if r.get("cause") == "alert_opened"
            and r.get("machine") == flap and r.get("other") == app]


def cmd_alerts(records: list[dict]) -> int:
    """Watchdog alert timeline: one block per alert id with its open /
    resolve transitions and a cross-link to the drill-down mode that
    explains the subject (app-flapping -> --app, shard-imbalance ->
    --shard)."""
    events = alert_records(records)
    if not events:
        print("no watchdog alerts in this journal (run with --watchdog)")
        return 0
    by_id: dict[int, list[dict]] = defaultdict(list)
    for record in events:
        by_id[record.get("container", -1)].append(record)
    opened = sum(1 for r in events if r.get("cause") == "alert_opened")
    resolved = sum(1 for r in events if r.get("cause") == "alert_resolved")
    print(f"{opened} alert(s) opened, {resolved} resolved, "
          f"{opened - resolved} still open at end of journal")
    for alert_id in sorted(by_id):
        history = by_id[alert_id]
        head = history[0]
        kind = alert_kind_name(head.get("machine", -1))
        subject = head.get("other", -1)
        print(f"alert {alert_id}: {kind} on subject {subject}")
        for record in history:
            print(f"  seq {record.get('seq'):>8}  "
                  f"tick {record.get('tick'):>5}  {describe(record)}")
        if not any(r.get("cause") == "alert_resolved" for r in history):
            print("  still open at end of journal")
        if kind == "app_flapping":
            print(f"  drill down: --app {subject} (per-pod reopen spans)")
        elif kind == "shard_imbalance":
            print(f"  drill down: --shard {subject} (the hot shard's "
                  f"records)")
    return 0


def cmd_why_unplaced(records: list[dict]) -> int:
    last = final_states(records)
    unplaced = {c: r for c, r in last.items()
                if r.get("kind") in TERMINAL_PENDING}
    if not unplaced:
        print("every journalled container ended up placed")
        return 0
    by_cause: dict[str, list[int]] = defaultdict(list)
    for container, record in sorted(unplaced.items()):
        by_cause[record.get("cause", "?")].append(container)
    print(f"{len(unplaced)} container(s) finished unplaced:")
    status = 0
    for cause, containers in sorted(by_cause.items(),
                                    key=lambda kv: -len(kv[1])):
        share = 100.0 * len(containers) / len(unplaced)
        print(f"  {cause:<28} {len(containers):>6}  ({share:5.1f}%)  "
              f"{CAUSE_TEXT.get(cause, cause)}")
        sample = ", ".join(str(c) for c in containers[:8])
        ellipsis = ", ..." if len(containers) > 8 else ""
        print(f"    containers: {sample}{ellipsis}")
        if cause == "none":
            status = 1  # a give-up without a diagnosis is a bug upstream
    return status


def cmd_machine(records: list[dict], machine: int) -> int:
    history = [r for r in records
               if r.get("machine") == machine
               or (r.get("kind") == "migrate" and r.get("other") == machine)]
    if not history:
        print(f"machine {machine}: no journal records")
        return 1
    print(f"machine {machine}: {len(history)} decision(s)")
    residents: set[int] = set()
    for record in history:
        kind = record.get("kind")
        container = record.get("container", -1)
        note = describe(record)
        if kind == "place" and record.get("machine") == machine:
            residents.add(container)
        elif kind == "migrate":
            if record.get("machine") == machine:
                residents.add(container)
                note = (f"arrived from machine {record.get('other')} — "
                        f"{CAUSE_TEXT.get(record.get('cause', '?'), '?')}")
            else:
                residents.discard(container)
                note = (f"departed to machine {record.get('machine')} — "
                        f"{CAUSE_TEXT.get(record.get('cause', '?'), '?')}")
        elif kind == "preempt" and record.get("machine") == machine:
            residents.discard(container)
        print(f"  seq {record.get('seq'):>8}  tick {record.get('tick'):>5}  "
              f"container {container:>6}  {note}")
    print(f"  journal-visible residents at end: "
          f"{sorted(residents) if residents else 'none'}")
    return 0


def cmd_summary(records: list[dict]) -> int:
    kinds = Counter(r.get("kind", "?") for r in records)
    causes = Counter(r.get("cause", "?") for r in records
                     if r.get("kind") != "event")
    last = final_states(records)
    placed = sum(1 for r in last.values()
                 if r.get("kind") in TERMINAL_PLACED)
    ticks = {r.get("tick", 0) for r in records}
    print(f"{len(records)} records over {len(ticks)} tick(s)")
    print("by kind: " + ", ".join(f"{k}={n}"
                                  for k, n in sorted(kinds.items())))
    print(f"final states: {placed} placed, {len(last) - placed} unplaced")
    shards = Counter(r["shard"] for r in records
                     if r.get("shard", -1) >= 0)
    if shards:
        print("by shard: " + ", ".join(f"{s}={n}"
                                       for s, n in sorted(shards.items())))
    print("top causes:")
    for cause, count in causes.most_common(8):
        print(f"  {cause:<28} {count:>8}  {CAUSE_TEXT.get(cause, cause)}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("journal", type=Path,
                        help="JSONL journal (--journal output or a "
                             ".crash flight-recorder dump)")
    group = parser.add_mutually_exclusive_group()
    group.add_argument("--why", type=int, metavar="CONTAINER",
                       help="decision history + verdict for one container")
    group.add_argument("--why-unplaced", action="store_true",
                       help="group finally-unplaced containers by cause")
    group.add_argument("--pod", type=int, metavar="ID",
                       help="lifecycle timeline + per-cause wait "
                            "attribution for one container")
    group.add_argument("--app", metavar="SELECTOR",
                       help="aggregate span accounting for one application "
                            "(numeric id, or a name with --slo-report)")
    group.add_argument("--machine", type=int, metavar="ID",
                       help="placements/arrivals/departures on one machine")
    group.add_argument("--alerts", action="store_true",
                       help="watchdog alert timeline with open/resolve "
                            "transitions per alert id")
    parser.add_argument("--shard", type=int, metavar="S",
                        help="only records stamped with this shard id "
                             "(-1 = emitted outside a shard solver)")
    parser.add_argument("--slo-report", type=Path, metavar="FILE",
                        help="SLO JSON (bench_online --slo_report / the "
                             "/slo endpoint) used to resolve --app names")
    args = parser.parse_args()

    records = load_journal(args.journal)
    if args.shard is not None:
        records = [r for r in records
                   if r.get("shard", -1) == args.shard]
        if not records:
            print(f"explain: {args.journal}: no records for shard "
                  f"{args.shard}", file=sys.stderr)
            return 1
    if not records:
        print(f"explain: {args.journal}: empty journal", file=sys.stderr)
        return 1
    if args.why is not None:
        return cmd_why(records, args.why)
    if args.why_unplaced:
        return cmd_why_unplaced(records)
    if args.pod is not None:
        return cmd_pod(records, args.pod)
    if args.app is not None:
        return cmd_app(records, args.app, args.slo_report)
    if args.machine is not None:
        return cmd_machine(records, args.machine)
    if args.alerts:
        return cmd_alerts(records)
    return cmd_summary(records)


if __name__ == "__main__":
    sys.exit(main())

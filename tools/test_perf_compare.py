#!/usr/bin/env python3
"""Unit tests for the perf_compare policy: unit "count" metrics are
identity-checked, time-unit metrics are ratio-checked (with the noise
floor), everything else is informational. Registered as a ctest case.

Run standalone:  python3 tools/test_perf_compare.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import perf_compare


def run_compare(base, cur, **kwargs):
    values_b = {name: value for name, (value, _) in base.items()}
    units_b = {name: unit for name, (_, unit) in base.items()}
    values_c = {name: value for name, (value, _) in cur.items()}
    return perf_compare.compare(values_b, units_b, values_c, **kwargs)


class CounterIdentityTest(unittest.TestCase):
    def test_equal_counters_pass(self):
        _, failures = run_compare({"pods_bound": (100.0, "count")},
                                  {"pods_bound": (100.0, "count")})
        self.assertEqual(failures, [])

    def test_any_counter_drift_fails(self):
        # Even a tiny drift fails: counters are placement decisions, and the
        # obs registry guarantees them bit-identical across thread counts.
        _, failures = run_compare({"core/migrations": (100.0, "count")},
                                  {"core/migrations": (101.0, "count")})
        self.assertEqual(len(failures), 1)
        self.assertIn("core/migrations", failures[0])

    def test_counters_are_never_ratio_excused(self):
        # A 1% drift would sail through any ratio check; identity catches it.
        _, failures = run_compare({"audit_placed": (10000.0, "count")},
                                  {"audit_placed": (10100.0, "count")},
                                  max_ratio=10.0)
        self.assertEqual(len(failures), 1)


class TimeRatioTest(unittest.TestCase):
    def test_small_slowdown_passes(self):
        _, failures = run_compare({"resolve_ms_p50": (100.0, "ms")},
                                  {"resolve_ms_p50": (150.0, "ms")},
                                  max_ratio=2.0)
        self.assertEqual(failures, [])

    def test_large_slowdown_fails(self):
        _, failures = run_compare({"resolve_ms_p50": (100.0, "ms")},
                                  {"resolve_ms_p50": (250.0, "ms")},
                                  max_ratio=2.0)
        self.assertEqual(len(failures), 1)
        self.assertIn("resolve_ms_p50", failures[0])

    def test_times_are_not_identity_checked(self):
        # The same 1% drift that fails a counter is fine on a timing.
        _, failures = run_compare({"total_resolve_s": (10.0, "s")},
                                  {"total_resolve_s": (10.1, "s")})
        self.assertEqual(failures, [])

    def test_noise_floor_skips_sub_ms_jitter(self):
        lines, failures = run_compare({"k8s/events_ms": (0.1, "ms")},
                                      {"k8s/events_ms": (0.9, "ms")},
                                      max_ratio=2.0, floor_ms=1.0)
        self.assertEqual(failures, [])
        self.assertTrue(any("[noise]" in line for line in lines))

    def test_unit_conversion(self):
        # 500us -> 1.5ms crosses the floor and is a x3 regression.
        _, failures = run_compare({"step": (500.0, "us")},
                                  {"step": (1500.0, "us")},
                                  max_ratio=2.0, floor_ms=1.0)
        self.assertEqual(len(failures), 1)


class InformationalTest(unittest.TestCase):
    def test_gauges_and_rates_never_fail(self):
        lines, failures = run_compare(
            {"k8s/pods_pending": (5.0, "gauge"),
             "bindings_per_s": (1000.0, "rate")},
            {"k8s/pods_pending": (50.0, "gauge"),
             "bindings_per_s": (10.0, "rate")})
        self.assertEqual(failures, [])
        self.assertEqual(sum("[info]" in line for line in lines), 2)

    def test_one_sided_metrics_reported_not_failed(self):
        lines, failures = run_compare({"old_metric": (1.0, "count")},
                                      {"new_metric": (2.0, "count")})
        self.assertEqual(failures, [])
        self.assertTrue(any("[missing]" in line for line in lines))
        self.assertTrue(any("[new]" in line for line in lines))


class TableFormatTest(unittest.TestCase):
    """The report is an aligned old/new/unit/ratio/verdict table."""

    def test_header_row_leads_the_report(self):
        lines, _ = run_compare({"a_ms": (100.0, "ms")},
                               {"a_ms": (50.0, "ms")})
        for column in ("metric", "old", "new", "unit", "ratio", "verdict"):
            self.assertIn(column, lines[0])

    def test_time_rows_show_old_new_unit_and_ratio(self):
        lines, _ = run_compare({"resolve_ms_p50": (100.0, "ms")},
                               {"resolve_ms_p50": (50.0, "ms")})
        self.assertRegex(
            lines[1],
            r"resolve_ms_p50\s+100\s+50\s+ms\s+x0\.50\s+\[ok\]")

    def test_identical_counters_show_identity_ratio(self):
        lines, _ = run_compare({"pods": (7.0, "count")},
                               {"pods": (7.0, "count")})
        self.assertRegex(lines[1], r"pods\s+7\s+7\s+count\s+=\s+\[ok\]")

    def test_columns_align_across_rows(self):
        lines, _ = run_compare(
            {"short": (1.0, "ms"), "a_much_longer_metric": (2000.0, "ms")},
            {"short": (1.5, "ms"), "a_much_longer_metric": (2100.0, "ms")})
        # Same verdict tag starts at the same column on every data row.
        offsets = {line.index("[ok]") for line in lines if "[ok]" in line}
        self.assertEqual(len(offsets), 1)


class BatchMetricsTest(unittest.TestCase):
    """The ISSUE 9 batch metrics ride the existing policy: the bench-JSON
    batch counters are identity-checked (batching must not change how many
    solves a fixed workload takes), and the BM_BatchRefresh* microbench
    timings are ratio-checked like any google-benchmark entry."""

    def test_batch_counters_are_identity_checked(self):
        _, failures = run_compare(
            {"batches_solved": (24.0, "count"),
             "batch_size_max": (3000.0, "count")},
            {"batches_solved": (25.0, "count"),
             "batch_size_max": (3000.0, "count")})
        self.assertEqual(len(failures), 1)
        self.assertIn("batches_solved", failures[0])

    def test_batch_refresh_regression_fails(self):
        doc = {"context": {}, "benchmarks": [
            {"name": "BM_BatchRefreshWarm/4096", "run_type": "iteration",
             "real_time": 2.0, "time_unit": "ms"},
            {"name": "BM_GroupWaterfallVsDinic/1", "run_type": "iteration",
             "real_time": 40.0, "time_unit": "ms"}]}
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "micro.json"
            path.write_text(json.dumps(doc), encoding="utf-8")
            values, units = perf_compare.load_metrics(path)
        slower = dict(values)
        slower["BM_BatchRefreshWarm/4096"] = 9.0  # x4.5 past --max-ratio 2
        _, failures = perf_compare.compare(values, units, slower,
                                           max_ratio=2.0)
        self.assertEqual(len(failures), 1)
        self.assertIn("BM_BatchRefreshWarm/4096", failures[0])

    def test_warm_start_win_reads_as_ok(self):
        # The expected direction — warm refresh beating the committed
        # baseline — must never fail the gate.
        _, failures = run_compare(
            {"BM_BatchRefreshWarm/4096": (8.0, "ms")},
            {"BM_BatchRefreshWarm/4096": (2.0, "ms")}, max_ratio=2.0)
        self.assertEqual(failures, [])


class LoadMetricsTest(unittest.TestCase):
    def test_bench_v1_roundtrip(self):
        doc = {"schema": "aladdin-bench-v1", "name": "online",
               "metrics": [{"name": "pods_bound", "value": 7, "unit": "count"},
                           {"name": "p50", "value": 1.5, "unit": "ms"}]}
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "bench.json"
            path.write_text(json.dumps(doc), encoding="utf-8")
            values, units = perf_compare.load_metrics(path)
        self.assertEqual(values, {"pods_bound": 7.0, "p50": 1.5})
        self.assertEqual(units, {"pods_bound": "count", "p50": "ms"})


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by the obs layer
(--trace=FILE on the bench binaries).

Checks, in order:

  * the file parses as JSON and has the object-format shape
    {"traceEvents": [...]} that Perfetto / chrome://tracing load;
  * every event carries name/ph/ts/pid, with a tid on all non-metadata
    events;
  * timestamps are globally non-decreasing across the whole file
    (metadata "M" events excluded) — the writer's k-way merge contract;
  * per (pid, tid), duration events obey stack discipline: every "E"
    closes the most recent open "B" *with the same name*, and nothing is
    left open at the end of the file;
  * counter events carry a numeric args.value;
  * optionally (--min-phases N) at least N distinct duration-scope names
    appear, and (--require-prefix core/ --require-prefix flow/ ...) every
    given prefix is represented — the bench_online acceptance gate that a
    run trace spans the whole pipeline, not just one layer.

Exit status 0 = valid; 1 = violations (one per line).

Usage:
  tools/check_trace.py TRACE.json [--min-phases 6] \\
      [--require-prefix core/ --require-prefix flow/ --require-prefix k8s/]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def validate(doc, min_phases: int = 0,
             require_prefixes: list[str] | None = None) -> list[str]:
    """Returns a list of violation strings; empty = valid."""
    errors: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["top level is not an object with a traceEvents array"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["traceEvents is not an array"]

    stacks: dict[tuple, list[str]] = {}
    scope_names: set[str] = set()
    last_ts = None
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        name = event.get("name")
        ph = event.get("ph")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing name")
            continue
        where = f"event {index} ({ph} {name})"
        if ph not in ("B", "E", "i", "C", "M"):
            errors.append(f"{where}: unsupported phase {ph!r}")
            continue
        if "pid" not in event:
            errors.append(f"{where}: missing pid")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric ts")
            continue
        if ph == "M":
            continue  # metadata sorts first regardless of ts
        if "tid" not in event:
            errors.append(f"{where}: missing tid")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where}: ts {ts} regresses below {last_ts}")
        last_ts = ts

        key = (event.get("pid"), event["tid"])
        if ph == "B":
            stacks.setdefault(key, []).append(name)
            scope_names.add(name)
        elif ph == "E":
            stack = stacks.setdefault(key, [])
            if not stack:
                errors.append(f"{where}: E without an open B on tid {key[1]}")
            elif stack[-1] != name:
                errors.append(f"{where}: E closes {stack[-1]!r}, not {name!r} "
                              f"(tid {key[1]})")
                stack.pop()
            else:
                stack.pop()
        elif ph == "C":
            value = event.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                errors.append(f"{where}: counter without numeric args.value")

    for (pid, tid), stack in sorted(stacks.items()):
        if stack:
            errors.append(f"tid {tid}: {len(stack)} unclosed scope(s), "
                          f"innermost {stack[-1]!r}")

    if min_phases and len(scope_names) < min_phases:
        errors.append(f"only {len(scope_names)} distinct phase name(s) "
                      f"{sorted(scope_names)}, need {min_phases}")
    for prefix in require_prefixes or []:
        if not any(name.startswith(prefix) for name in scope_names):
            errors.append(f"no phase named under {prefix!r} — the trace does "
                          f"not span that pipeline layer")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path)
    parser.add_argument("--min-phases", type=int, default=0,
                        help="require at least this many distinct scope names")
    parser.add_argument("--require-prefix", action="append", default=[],
                        metavar="PREFIX",
                        help="require at least one scope under this prefix "
                             "(repeatable)")
    args = parser.parse_args()

    try:
        doc = json.loads(args.trace.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_trace: {args.trace}: {error}", file=sys.stderr)
        return 1

    errors = validate(doc, min_phases=args.min_phases,
                      require_prefixes=args.require_prefix)
    if errors:
        print(f"check_trace: {args.trace}: {len(errors)} violation(s)",
              file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1

    events = doc["traceEvents"]
    scopes = sum(1 for e in events if isinstance(e, dict) and e.get("ph") == "B")
    names = {e["name"] for e in events
             if isinstance(e, dict) and e.get("ph") == "B"}
    print(f"check_trace: {args.trace}: OK — {len(events)} events, "
          f"{scopes} scopes, {len(names)} distinct phases")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Compare bench results against committed baselines.

Usage:
  tools/perf_compare.py BASELINE.json CURRENT.json [--max-ratio 2.0]

Understands two formats:

  * aladdin-bench-v1 — emitted by the bench binaries via common/bench_json.h
    ("schema": "aladdin-bench-v1", flat "metrics" array). Time-like metrics
    (unit ns/us/ms/s) are regression-checked; unit "count" metrics (pods
    bound, audit numbers) are *identity*-checked instead, because a perf PR
    must not change placement decisions; any other unit is informational.
  * google-benchmark JSON (--benchmark_out) — "benchmarks" array; real_time
    per benchmark is regression-checked.

Exit status 0 = within bounds; 1 = a metric regressed past --max-ratio or
an identity metric changed. Metrics present on only one side are reported
but do not fail the comparison (benches grow new metrics over time).

Absolute-floor guard: time metrics where both sides are below --floor-ms
(default 1.0) are skipped — sub-millisecond timings on shared CI machines
are noise, and a 0.1ms -> 0.3ms jump is not a regression worth a red build.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_metrics(path: Path) -> tuple[dict[str, float], dict[str, str]]:
    """Returns (name -> value, name -> unit) for either supported format."""
    data = json.loads(path.read_text(encoding="utf-8"))
    values: dict[str, float] = {}
    units: dict[str, str] = {}
    if data.get("schema") == "aladdin-bench-v1":
        for m in data["metrics"]:
            values[m["name"]] = float(m["value"])
            units[m["name"]] = m.get("unit", "")
    elif "benchmarks" in data:  # google-benchmark
        for b in data["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            name = b["name"]
            values[name] = float(b["real_time"])
            units[name] = b.get("time_unit", "ns")
    else:
        raise ValueError(f"{path}: unrecognised bench JSON format")
    return values, units


TIME_UNITS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def compare(base_values: dict[str, float], base_units: dict[str, str],
            cur_values: dict[str, float], max_ratio: float = 2.0,
            floor_ms: float = 1.0) -> tuple[list[str], list[str]]:
    """The comparison policy, importable for tests: time-unit metrics are
    ratio-checked against max_ratio (below floor_ms on both sides = noise),
    unit "count" metrics are identity-checked (the obs registry's counters
    and the audit numbers are placement decisions, not timings), and any
    other unit — "gauge", "rate", histogram units — is informational.

    Returns (report_lines, failures); empty failures = within bounds. The
    report is an aligned per-metric table (old, new, unit, ratio, verdict)
    so a perf PR's wins are readable straight from the CI log."""
    # (name, old, new, unit, ratio, verdict) — formatted into a table below.
    rows: list[tuple[str, str, str, str, str, str]] = []
    failures: list[str] = []
    for name in sorted(base_values):
        if name not in cur_values:
            rows.append((name, f"{base_values[name]:g}", "-",
                         base_units.get(name, ""), "", "[missing]"))
            continue
        base, cur = base_values[name], cur_values[name]
        unit = base_units.get(name, "")
        if unit in TIME_UNITS:
            base_ms = base * TIME_UNITS[unit]
            cur_ms = cur * TIME_UNITS[unit]
            if base_ms < floor_ms and cur_ms < floor_ms:
                rows.append((name, f"{base:g}", f"{cur:g}", unit, "",
                             f"[noise] (< {floor_ms}ms floor)"))
                continue
            ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
            verdict = "REGRESSED" if ratio > max_ratio else "ok"
            rows.append((name, f"{base:g}", f"{cur:g}", unit,
                         f"x{ratio:.2f}", f"[{verdict}]"))
            if ratio > max_ratio:
                failures.append(f"{name}: {base:g} -> {cur:g} {unit} is "
                                f"x{ratio:.2f} > x{max_ratio}")
        elif unit == "count":
            # Counters must match exactly: placement decisions are part of
            # the contract, not a tunable.
            if base != cur:
                rows.append((name, f"{base:g}", f"{cur:g}", unit, "",
                             "[CHANGED]"))
                failures.append(f"{name}: counter changed {base:g} -> {cur:g}")
            else:
                rows.append((name, f"{base:g}", f"{cur:g}", unit, "=",
                             "[ok]"))
        else:
            rows.append((name, f"{base:g}", f"{cur:g}", unit, "", "[info]"))
    for name in sorted(set(cur_values) - set(base_values)):
        rows.append((name, "-", f"{cur_values[name]:g}",
                     base_units.get(name, ""), "", "[new]"))

    header = ("metric", "old", "new", "unit", "ratio", "verdict")
    widths = [max(len(header[c]), *(len(r[c]) for r in rows)) if rows
              else len(header[c]) for c in range(len(header))]

    def fmt(row: tuple[str, str, str, str, str, str]) -> str:
        name_c, old_c, new_c, unit_c, ratio_c, verdict_c = row
        return ("  "
                f"{name_c:<{widths[0]}}  {old_c:>{widths[1]}}  "
                f"{new_c:>{widths[2]}}  {unit_c:<{widths[3]}}  "
                f"{ratio_c:>{widths[4]}}  {verdict_c}").rstrip()

    lines = [fmt(header)] + [fmt(r) for r in rows]
    return lines, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current/baseline exceeds this on any "
                             "time metric (default 2.0)")
    parser.add_argument("--floor-ms", type=float, default=1.0,
                        help="ignore time metrics where both sides are below "
                             "this many milliseconds (default 1.0)")
    args = parser.parse_args()

    base_values, base_units = load_metrics(args.baseline)
    cur_values, _ = load_metrics(args.current)

    lines, failures = compare(base_values, base_units, cur_values,
                              max_ratio=args.max_ratio,
                              floor_ms=args.floor_ms)
    for line in lines:
        print(line)

    if failures:
        print(f"\nperf_compare: {len(failures)} failure(s) vs "
              f"{args.baseline.name}", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nperf_compare: OK vs {args.baseline.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

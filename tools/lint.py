#!/usr/bin/env python3
"""Repo-specific lint for the Aladdin tree.

Enforces the project idioms that generic tooling does not know about:

  * every header under src/ starts its include story with `#pragma once`;
  * no naked `assert(` (or `#include <cassert>`) in src/ — invariants go
    through ALADDIN_CHECK / ALADDIN_DCHECK (src/common/check.h) so they
    survive, or are deliberately compiled out of, every build flavour;
  * include order in src/ .cpp files: the file's own header comes first
    (catches headers that silently depend on prior includes), and system
    includes never trail project includes;
  * everything in src/ lives in a `namespace aladdin` (sub)namespace, and
    headers never `using namespace` at file scope;
  * threading guard: no raw std::thread / std::jthread / std::async outside
    src/common/thread_pool.* — ad-hoc threads bypass the pool's deterministic
    fan-out contract (querying std::thread::hardware_concurrency is fine);
  * diagnostics guard: no raw writes to stderr (std::fprintf(stderr, ...) /
    std::cerr) outside common/log.*, common/check.* and common/flags.* —
    everything diagnostic goes through LOG_* so --log-level can silence it
    globally (tests run at kWarn). This rule also covers bench/ and
    examples/, which are otherwise exempt from src/ lint.
  * provenance guard: no string literal inside an `EmitDecision(...)` call
    in src/ — decision causes come from the closed obs::Cause enum
    (src/obs/journal.h) so the journal vocabulary stays greppable and
    tools/explain.py never meets a cause it cannot classify.

The determinism guard (rand/time seeding, D103) and the flow allocation
guard (A1/A104) moved to the AST-grade analyzer in tools/analyze/, which
resolves receivers and call chains instead of pattern-matching lines; this
file keeps only the purely textual idioms.

Runs as a ctest case (`ctest -R lint`) and standalone:  tools/lint.py
Exit status 0 = clean; 1 = violations (one per line, file:line: message).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

HEADER_EXTS = {".h"}
SOURCE_EXTS = {".cpp"}

# (regex, message) applied to comment-stripped code lines in src/.
BANNED_PATTERNS = [
    (re.compile(r"(?<![A-Za-z0-9_])assert\s*\("),
     "naked assert(); use ALADDIN_CHECK / ALADDIN_DCHECK (common/check.h)"),
    (re.compile(r"#\s*include\s*<cassert>"),
     "<cassert> include; use common/check.h"),
    (re.compile(r"#\s*include\s*<assert\.h>"),
     "<assert.h> include; use common/check.h"),
]

# `std::thread::` (e.g. hardware_concurrency) is a query, not a thread.
THREAD_CONSTRUCT = re.compile(r"std::(?:thread\b(?!\s*::)|jthread\b|async\b)")
THREAD_POOL_FILES = {"thread_pool.h", "thread_pool.cpp"}

# Raw stderr writes bypass the leveled logger (common/log.h). Only the
# logger itself, the check-failure path (which must not allocate or lock
# during static destruction) and the flag parser (usage text before logging
# is configured) may write to stderr directly.
STDERR_WRITE = re.compile(r"(?:std::)?fprintf\s*\(\s*stderr\b|std::cerr\b")
STDERR_ALLOWED_FILES = {"log.h", "log.cpp", "check.h", "check.cpp",
                        "flags.h", "flags.cpp"}

# Journal emission calls: a string literal among the arguments means a
# free-form cause snuck past the obs::Cause enum.
EMIT_DECISION = re.compile(r"\bEmitDecision\s*\(")

STATIC_ASSERT = re.compile(r"\bstatic_assert\s*\(")
INCLUDE = re.compile(r'#\s*include\s*(["<])([^">]+)[">]')
USING_NAMESPACE = re.compile(r"^\s*using\s+namespace\s")


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string literals, preserving line
    structure so reported line numbers stay meaningful."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
            elif c == "'":
                state = "char"
                out.append(c)
            else:
                out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; be forgiving
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def lint_emit_decision_causes(code: str, err) -> None:
    """Flag string literals inside EmitDecision(...) argument lists. The
    comment stripper blanks literal *contents* but keeps the quotes, so any
    `"` between the call's parentheses is a smuggled free-form cause."""
    for m in EMIT_DECISION.finditer(code):
        depth = 0
        for i in range(m.end() - 1, len(code)):
            c = code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    break
            elif c == '"':
                err(code.count("\n", 0, m.start()) + 1,
                    "string literal in EmitDecision(); causes must come "
                    "from the obs::Cause enum (obs/journal.h)")
                break


def lint_stderr_writes(path: Path, lines: list[str], err) -> None:
    if path.parent.name == "common" and path.name in STDERR_ALLOWED_FILES:
        return
    for lineno, line in enumerate(lines, start=1):
        if STDERR_WRITE.search(line):
            err(lineno, "raw stderr write; route diagnostics through LOG_* "
                        "(common/log.h) so --log-level can silence them")


def lint_aux_file(path: Path, errors: list[str]) -> None:
    """bench/ and examples/ drivers: only the diagnostics guard applies —
    they print results on stdout and own their include style."""
    rel = path.relative_to(REPO_ROOT)
    code = strip_comments(path.read_text(encoding="utf-8"))

    def err(lineno: int, message: str) -> None:
        errors.append(f"{rel}:{lineno}: {message}")

    lint_stderr_writes(path, code.split("\n"), err)


def lint_file(path: Path, errors: list[str]) -> None:
    rel = path.relative_to(REPO_ROOT)
    raw = path.read_text(encoding="utf-8")
    code = strip_comments(raw)
    lines = code.split("\n")

    def err(lineno: int, message: str) -> None:
        errors.append(f"{rel}:{lineno}: {message}")

    if raw and not raw.endswith("\n"):
        err(len(lines), "file does not end with a newline")

    # --- banned constructs -------------------------------------------------
    for lineno, line in enumerate(lines, start=1):
        for pattern, message in BANNED_PATTERNS:
            m = pattern.search(line)
            if not m:
                continue
            if pattern is BANNED_PATTERNS[0][0] and STATIC_ASSERT.search(line):
                # static_assert is fine; re-check the line without it.
                cleaned = STATIC_ASSERT.sub("", line)
                if not pattern.search(cleaned):
                    continue
            err(lineno, message)

    # --- threading guard ---------------------------------------------------
    if path.name not in THREAD_POOL_FILES:
        for lineno, line in enumerate(lines, start=1):
            if THREAD_CONSTRUCT.search(line):
                err(lineno, "raw thread construction; route parallelism "
                            "through common/thread_pool.h (ThreadPool / "
                            "ParallelFor)")

    # --- diagnostics guard -------------------------------------------------
    lint_stderr_writes(path, lines, err)

    # --- provenance guard --------------------------------------------------
    lint_emit_decision_causes(code, err)

    # --- header rules ------------------------------------------------------
    if path.suffix in HEADER_EXTS:
        first_directive = next(
            (l.strip() for l in lines if l.strip().startswith("#")), "")
        if first_directive != "#pragma once":
            err(1, "header must open its directives with #pragma once")
        for lineno, line in enumerate(lines, start=1):
            if USING_NAMESPACE.search(line):
                err(lineno, "using namespace in a header leaks into every "
                            "includer")

    # --- include order (sources) ------------------------------------------
    if path.suffix in SOURCE_EXTS:
        includes = []  # (lineno, kind, target)
        # Parse from the raw text: the string-blanking above erases quoted
        # include paths.
        for lineno, line in enumerate(raw.split("\n"), start=1):
            m = INCLUDE.match(line.strip())
            if m:
                includes.append((lineno, m.group(1), m.group(2)))
        own_header = path.with_suffix(".h")
        if own_header.exists() and includes:
            expected = own_header.relative_to(SRC).as_posix()
            lineno, kind, target = includes[0]
            if kind != '"' or target != expected:
                err(lineno, f'first include must be the file\'s own header '
                            f'"{expected}"')
        seen_project = None
        for lineno, kind, target in includes[1:]:
            if kind == '"':
                seen_project = (lineno, target)
            elif seen_project is not None:
                err(lineno, f"system include <{target}> after project "
                            f'include "{seen_project[1]}" — keep system '
                            "includes in one leading block")

    # --- namespace rule ----------------------------------------------------
    # Macro-only headers (annotation macros have no declarations to wrap)
    # and the extern-"C" sanitizer hooks are exempt.
    namespace_exempt = {"default_options.cpp", "thread_annotations.h",
                        "analysis.h"}
    if "namespace aladdin" not in code and path.name not in namespace_exempt:
        err(1, "file must live in a namespace aladdin::* namespace")


def main() -> int:
    files = []
    for ext in HEADER_EXTS | SOURCE_EXTS:
        files.extend(sorted(SRC.rglob(f"*{ext}")))
    # The sanitizer runtime hooks are extern "C" by necessity but still obey
    # the banned-construct rules.
    files.append(REPO_ROOT / "tools" / "sanitizers" / "default_options.cpp")

    errors: list[str] = []
    for path in files:
        lint_file(path, errors)

    aux_files = []
    for directory in ("bench", "examples"):
        aux_files.extend(sorted((REPO_ROOT / directory).glob("*.cpp")))
    for path in aux_files:
        lint_aux_file(path, errors)
    files.extend(aux_files)

    if errors:
        print(f"lint: {len(errors)} violation(s)", file=sys.stderr)
        for e in errors:
            print(e, file=sys.stderr)
        return 1
    print(f"lint: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

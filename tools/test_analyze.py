#!/usr/bin/env python3
"""Fixture-corpus tests for the aladdin-analyze suite (tools/analyze/).

Every rule family has a violating and (where meaningful) a conforming
translation unit under tests/analyze/. Each violating fixture must produce
exactly the expected diagnostic codes — no more, no fewer — and each
conforming fixture must come back clean, so a rule that silently stops
firing (or starts over-firing) turns the `analyze_unit` ctest red.

Runs the analyzer in-process (no subprocess per case) through the same
driver entry point `ctest -R analyze` uses, in --fixture mode so rule
scopes widen to the fixture files instead of src/.

Standalone:  python3 tools/test_analyze.py
"""

from __future__ import annotations

import sys
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.analyze import diagnostics, rules  # noqa: E402
from tools.analyze.source_model import build_source_file  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "analyze"


def analyze_fixture(name: str, families=None):
    """(active_codes, suppressed_codes) for one fixture TU, sorted."""
    path = FIXTURES / name
    rel = path.relative_to(REPO_ROOT).as_posix()
    model = build_source_file(rel, path.read_text(encoding="utf-8"))
    ctx = rules.RuleContext(files=[model], fixture_mode=True)
    diags = rules.run_all(ctx, families)
    markers, malformed = diagnostics.collect_allows(rel, model.comments)
    diags = diagnostics.apply_allows(diags, markers) + malformed
    active = sorted(d.code for d in diags if not d.suppressed)
    suppressed = sorted(d.code for d in diags if d.suppressed)
    return active, suppressed


class ViolatingFixtures(unittest.TestCase):
    """Each rule is demonstrated by a fixture that fails with exact codes."""

    def test_d1(self):
        active, suppressed = analyze_fixture("d1_violating.cpp")
        self.assertEqual(active,
                         ["D101", "D101", "D101", "D102", "D103", "D103"])
        self.assertEqual(suppressed, [])

    def test_a1(self):
        active, suppressed = analyze_fixture("a1_violating.cpp")
        self.assertEqual(active, ["A101", "A101", "A102", "A103", "A104"])
        self.assertEqual(suppressed, [])

    def test_l1(self):
        active, suppressed = analyze_fixture("l1_violating.cpp")
        self.assertEqual(active, ["L101", "L102", "L103", "L104"])
        self.assertEqual(suppressed, [])

    def test_e1(self):
        active, suppressed = analyze_fixture("e1_violating.cpp")
        self.assertEqual(active, ["E101", "E102"])
        self.assertEqual(suppressed, [])

    def test_x_suppression_hygiene(self):
        # A reasonless marker and an unknown code are X001 (and suppress
        # nothing, so the underlying D103 stays live); a well-formed marker
        # covering no diagnostic is X002; the valid marker suppresses its
        # D103 without tripping anything.
        active, suppressed = analyze_fixture("x_violating.cpp")
        self.assertEqual(active, ["D103", "X001", "X001", "X002"])
        self.assertEqual(suppressed, ["D103"])


class ConformingFixtures(unittest.TestCase):
    """The sanctioned counterparts produce zero violations."""

    def test_d1(self):
        self.assertEqual(analyze_fixture("d1_conforming.cpp"), ([], []))

    def test_a1(self):
        self.assertEqual(analyze_fixture("a1_conforming.cpp"), ([], []))

    def test_l1(self):
        # The one deliberately unguarded field is suppressed by its
        # analyze:allow(L103) marker — a used marker is not stale.
        active, suppressed = analyze_fixture("l1_conforming.cpp")
        self.assertEqual(active, [])
        self.assertEqual(suppressed, ["L103"])

    def test_e1(self):
        self.assertEqual(analyze_fixture("e1_conforming.cpp"), ([], []))


class FamilyFiltering(unittest.TestCase):
    """--rules narrows the run without inventing stale-marker noise."""

    def test_single_family_only(self):
        active, _ = analyze_fixture("a1_violating.cpp", families={"A1"})
        self.assertTrue(all(c.startswith("A1") for c in active), active)
        self.assertEqual(len(active), 5)

    def test_marker_for_unrun_family_not_stale(self):
        # l1_conforming carries an analyze:allow(L103); running only D1
        # must not report it as stale (X002) — it was never judged.
        path = FIXTURES / "l1_conforming.cpp"
        rel = path.relative_to(REPO_ROOT).as_posix()
        model = build_source_file(rel, path.read_text(encoding="utf-8"))
        ctx = rules.RuleContext(files=[model], fixture_mode=True)
        diags = rules.run_all(ctx, {"D1"})
        markers, malformed = diagnostics.collect_allows(rel, model.comments)
        markers = [m for m in markers
                   if any(m.code.startswith(f) for f in ("D1",))]
        diags = diagnostics.apply_allows(diags, markers) + malformed
        self.assertEqual([d.code for d in diags], [])


class DriverEndToEnd(unittest.TestCase):
    """The __main__ entry point agrees with the in-process results."""

    def run_driver(self, *argv: str) -> int:
        from tools.analyze import driver
        import contextlib
        import io
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf), contextlib.redirect_stderr(buf):
            code = driver.main(list(argv))
        self.last_output = buf.getvalue()
        return code

    def test_violating_exits_1(self):
        code = self.run_driver("--backend", "lex", "--fixture",
                               str(FIXTURES / "d1_violating.cpp"))
        self.assertEqual(code, 1)
        self.assertIn("6 violation(s)", self.last_output)

    def test_conforming_exits_0(self):
        code = self.run_driver("--backend", "lex", "--fixture",
                               str(FIXTURES / "d1_conforming.cpp"))
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)

#!/usr/bin/env python3
"""Validate a decision journal produced by --journal=FILE (obs/journal.h).

Checks, in order:

  * every line parses as a flat JSON record with the full field set
    (seq/tick/kind/cause/container/machine/other/detail) and a kind/cause
    drawn from the closed vocabularies;
  * seq is strictly increasing across the file — the sink drains rings in
    seq order, so any regression means records were lost or interleaved;
  * ticks are monotone non-decreasing (SetJournalTick only moves forward);
  * terminal records are well-formed: place/migrate carry a machine >= 0,
    migrate carries a source (`other` >= 0), preempt carries an aggressor;
  * the optional `shard` field (stamped by core::ShardedScheduler; absent
    on unsharded and K=1 runs) is an integer >= -1, and seq is strictly
    increasing *within* each shard's record stream too — the coordinator
    replays each shard's capture buffer in order from a serial section, so
    a per-shard regression means a capture was split or interleaved;
  * every container whose *final* terminal record is a give-up carries a
    cause other than "none" — the acceptance bar behind
    `explain.py --why-unplaced`. With --no-catch-all, "no_admissible_path"
    and "baseline_unplaced" also fail (use on Aladdin runs, where the
    terminal diagnosis must be specific);
  * lifecycle event shapes (obs/lifecycle.h + obs/slo.h): pod_arrived
    carries an app and an epoch, shard_routed/shard_spilled carry a target
    shard with round 0 / round >= 1, slo_violated carries an age >= 1;
  * micro-batch markers (core ScheduleBatch): each batch_scheduled event
    carries the request's index within its batch (`machine`) and the
    arrival size (`detail` >= 0). Per-request terminal records are emitted
    in request order, so within a tick the indices must be seq-contiguous:
    each marker either starts a new batch at index 0 or continues the
    previous marker's batch at index + 1. batch_deferred carries the number
    of deferred containers (`detail` >= 1);
  * lifecycle *span* checks — epochs per pod count up consecutively from
    0, failed attempts never precede their epoch's arrival (pending-age is
    monotone), at most one slo_violated per epoch with an age consistent
    with the arrival tick, and no placement without a prior arrival. These
    need every record of a pod's history, so they only run when the
    journal is complete (seq 0..N-1, no gaps): per-thread rings drop
    records under extreme load — raise --journal_ring on such runs;
  * watchdog alert shapes (obs/watchdog.h): alert_opened carries an
    alert id (`container` >= 0) and a kind index (`machine`) inside the
    closed AlertKind vocabulary. Pairing checks run on complete journals
    only (same bar as the span checks): an alert id opens at most once and
    resolves at most once, a resolve always follows its open with matching
    kind and subject and a duration (`detail`) equal to resolve tick minus
    open tick, and at most one alert per (kind, subject) is open at a time
    — the hysteresis contract behind `explain.py --alerts`.

Exit status 0 = valid; 1 = violations (one per line).

Usage:
  tools/check_journal.py RUN.journal.jsonl [--no-catch-all]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

KINDS = {"place", "reject", "migrate", "preempt", "unplaced", "event"}
CAUSES = {
    "none", "admitted_direct", "admitted_after_repair", "short_lived_best_fit",
    "capacity_exhausted_cpu", "capacity_exhausted_mem",
    "anti_affinity_intra_app", "anti_affinity_inter_app",
    "no_admissible_path", "repair_attempt_budget", "migrated_for_repair",
    "migrated_for_rebalance", "preempted_by_priority", "depth_limit_stop",
    "isomorphism_prune", "pod_retired", "baseline_unplaced",
    "pod_arrived", "shard_routed", "shard_spilled", "slo_violated",
    "batch_scheduled", "batch_deferred", "alert_opened", "alert_resolved",
}
# Closed AlertKind vocabulary (obs/watchdog.h); alert_opened/alert_resolved
# records carry the kind as an index in `machine`.
ALERT_KINDS = ("slo_burn_rate", "pending_age_drift", "app_flapping",
               "shard_imbalance", "solve_regression", "cause_mix_shift")
CATCH_ALL = {"no_admissible_path", "baseline_unplaced"}
FIELDS = ("seq", "tick", "kind", "cause", "container", "machine", "other",
          "detail")
TERMINAL_PLACED = {"place", "migrate"}
TERMINAL_PENDING = {"preempt", "unplaced"}


def validate(lines: list[str], no_catch_all: bool = False) -> list[str]:
    errors: list[str] = []
    last_seq = None
    last_tick = None
    last_seq_by_shard: dict[int, int] = {}
    final: dict[int, tuple[int, str, str]] = {}  # container -> (line, kind, cause)
    records = 0
    # Lifecycle span state (container -> open-epoch bookkeeping). Span
    # errors are collected apart and only reported when the journal is
    # complete: a ring-dropped arrival would fabricate violations.
    span_errors: list[str] = []
    spans: dict[int, dict] = {}
    first_seq = None
    seq_ok = True
    # (tick, index) of the last batch_scheduled marker, for the
    # request-order contiguity check.
    last_batch: tuple[int, int] | None = None
    # Watchdog alert pairing state. Like the span checks, pairing errors
    # are only reported on complete journals: a ring-dropped open would
    # fabricate an "resolved without an open" violation.
    alert_errors: list[str] = []
    open_alerts: dict[int, tuple[int, int, int]] = {}  # id -> (kind, subj, tick)
    closed_alerts: set[int] = set()
    open_alert_keys: dict[tuple[int, int], int] = {}  # (kind, subj) -> id
    alerts_seen = False
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"line {lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            errors.append(f"{where}: not JSON ({error})")
            continue
        missing = [f for f in FIELDS if f not in record]
        if missing:
            errors.append(f"{where}: missing field(s) {missing}")
            continue
        records += 1
        kind = record["kind"]
        cause = record["cause"]
        if kind not in KINDS:
            errors.append(f"{where}: unknown kind {kind!r}")
        if cause not in CAUSES:
            errors.append(f"{where}: unknown cause {cause!r}")

        seq = record["seq"]
        if first_seq is None:
            first_seq = seq
        if last_seq is not None and seq <= last_seq:
            errors.append(f"{where}: seq {seq} does not increase past "
                          f"{last_seq}")
            seq_ok = False
        last_seq = seq
        tick = record["tick"]
        if last_tick is not None and tick < last_tick:
            errors.append(f"{where}: tick {tick} regresses below {last_tick}")
        last_tick = tick

        shard = record.get("shard", -1)
        if not isinstance(shard, int) or shard < -1:
            errors.append(f"{where}: shard {shard!r} is not an integer >= -1")
        else:
            prev = last_seq_by_shard.get(shard)
            if prev is not None and seq <= prev:
                errors.append(f"{where}: shard {shard} seq {seq} does not "
                              f"increase past {prev}")
            last_seq_by_shard[shard] = seq

        if kind in ("place", "migrate") and record["machine"] < 0:
            errors.append(f"{where}: {kind} without a destination machine")
        if kind == "migrate" and record["other"] < 0:
            errors.append(f"{where}: migrate without a source machine")
        if kind == "preempt" and record["other"] < 0:
            errors.append(f"{where}: preempt without an aggressor container")

        container = record["container"]
        if container >= 0 and kind in TERMINAL_PLACED | TERMINAL_PENDING:
            final[container] = (lineno, kind, cause)

        # Lifecycle event shapes (always on) and span bookkeeping (only
        # reported when the journal turns out to be complete).
        if kind == "event" and cause == "pod_arrived":
            if record["other"] < 0:
                errors.append(f"{where}: pod_arrived without an app")
            span = spans.get(container)
            expected = 0 if span is None else span["epoch"] + 1
            if record["detail"] != expected:
                span_errors.append(f"{where}: container {container} opens "
                                   f"epoch {record['detail']} (expected "
                                   f"{expected})")
            spans[container] = {"arrival": tick, "epoch": record["detail"],
                                "flagged": False}
        elif kind == "event" and cause == "shard_routed":
            if record["other"] < 0:
                errors.append(f"{where}: shard_routed without a target "
                              f"shard")
            if record["detail"] != 0:
                errors.append(f"{where}: shard_routed with round "
                              f"{record['detail']} (spills use "
                              f"shard_spilled)")
        elif kind == "event" and cause == "shard_spilled":
            if record["other"] < 0:
                errors.append(f"{where}: shard_spilled without a target "
                              f"shard")
            if record["detail"] < 1:
                errors.append(f"{where}: shard_spilled in round "
                              f"{record['detail']} (first routing is "
                              f"shard_routed)")
        elif kind == "event" and cause == "slo_violated":
            if record["detail"] < 1:
                errors.append(f"{where}: slo_violated with age "
                              f"{record['detail']}")
            span = spans.get(container)
            if span is None:
                span_errors.append(f"{where}: slo_violated for container "
                                   f"{container} with no open span")
            else:
                if span["flagged"]:
                    span_errors.append(f"{where}: container {container} "
                                       f"flagged twice in epoch "
                                       f"{span['epoch']}")
                span["flagged"] = True
                age = record["detail"]
                # Pending crossing: age = tick - arrival + 1; late-placement
                # flag at admission: age = wait = tick - arrival.
                if age not in (tick - span["arrival"],
                               tick - span["arrival"] + 1):
                    span_errors.append(f"{where}: container {container} "
                                       f"slo_violated age {age} at tick "
                                       f"{tick} inconsistent with arrival "
                                       f"tick {span['arrival']}")
        elif kind == "event" and cause == "batch_scheduled":
            index = record["machine"]
            if index < 0:
                errors.append(f"{where}: batch_scheduled without a request "
                              f"index")
            elif index != 0 and (last_batch is None
                                 or last_batch != (tick, index - 1)):
                errors.append(f"{where}: batch_scheduled index {index} at "
                              f"tick {tick} breaks request order (expected "
                              f"0 or a tick-{tick} predecessor at index "
                              f"{index - 1})")
            if record["detail"] < 0:
                errors.append(f"{where}: batch_scheduled with negative "
                              f"arrival size {record['detail']}")
            last_batch = (tick, index)
        elif kind == "event" and cause == "batch_deferred":
            if record["detail"] < 1:
                errors.append(f"{where}: batch_deferred with count "
                              f"{record['detail']}")
        elif kind == "event" and cause == "alert_opened":
            alerts_seen = True
            alert_id = record["container"]
            kind_index = record["machine"]
            subject = record["other"]
            if alert_id < 0:
                errors.append(f"{where}: alert_opened without an alert id")
            if not 0 <= kind_index < len(ALERT_KINDS):
                errors.append(f"{where}: alert_opened with kind index "
                              f"{kind_index} outside the AlertKind "
                              f"vocabulary")
                continue
            if alert_id in open_alerts or alert_id in closed_alerts:
                alert_errors.append(f"{where}: alert {alert_id} opened "
                                    f"twice")
                continue
            key = (kind_index, subject)
            if key in open_alert_keys:
                alert_errors.append(f"{where}: second open "
                                    f"{ALERT_KINDS[kind_index]} alert for "
                                    f"subject {subject} (alert "
                                    f"{open_alert_keys[key]} is still open)")
            open_alerts[alert_id] = (kind_index, subject, tick)
            open_alert_keys[key] = alert_id
        elif kind == "event" and cause == "alert_resolved":
            alerts_seen = True
            alert_id = record["container"]
            opened = open_alerts.pop(alert_id, None)
            if opened is None:
                alert_errors.append(f"{where}: alert {alert_id} resolved "
                                    f"without an open")
                continue
            closed_alerts.add(alert_id)
            kind_index, subject, opened_tick = opened
            open_alert_keys.pop((kind_index, subject), None)
            if record["machine"] != kind_index:
                alert_errors.append(f"{where}: alert {alert_id} resolved "
                                    f"with kind index {record['machine']} "
                                    f"but opened as {ALERT_KINDS[kind_index]}")
            if record["other"] != subject:
                alert_errors.append(f"{where}: alert {alert_id} resolved "
                                    f"with subject {record['other']} but "
                                    f"opened on subject {subject}")
            if record["detail"] != tick - opened_tick:
                alert_errors.append(f"{where}: alert {alert_id} resolved "
                                    f"with duration {record['detail']} but "
                                    f"opened at tick {opened_tick} and "
                                    f"resolved at tick {tick}")
        elif kind in ("reject", "unplaced") and container >= 0:
            span = spans.get(container)
            if span is not None and tick < span["arrival"]:
                span_errors.append(f"{where}: container {container} attempt "
                                   f"at tick {tick} precedes its arrival "
                                   f"tick {span['arrival']} (pending-age "
                                   f"regresses)")
        elif kind == "place" and spans and container not in spans:
            span_errors.append(f"{where}: container {container} placed "
                               f"without a lifecycle arrival")

    if records == 0:
        errors.append("no records")
    # Span checks need the full history: only meaningful when the seq space
    # has no gaps (rings drop under extreme load; see --journal_ring).
    complete = (records > 0 and seq_ok and first_seq == 0 and
                last_seq == records - 1)
    if spans and complete:
        errors.extend(span_errors)
    if alerts_seen and complete:
        errors.extend(alert_errors)
    for container, (lineno, kind, cause) in sorted(final.items()):
        if kind not in TERMINAL_PENDING:
            continue
        if cause == "none":
            errors.append(f"line {lineno}: container {container} finished "
                          f"unplaced with no cause")
        elif no_catch_all and kind == "unplaced" and cause in CATCH_ALL:
            errors.append(f"line {lineno}: container {container} finished "
                          f"unplaced with catch-all cause {cause!r}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("journal", type=Path)
    parser.add_argument("--no-catch-all", action="store_true",
                        help="fail terminal give-ups with catch-all causes "
                             "(Aladdin runs must diagnose specifically)")
    args = parser.parse_args()

    try:
        lines = args.journal.read_text(encoding="utf-8").split("\n")
    except OSError as error:
        print(f"check_journal: {args.journal}: {error}", file=sys.stderr)
        return 1

    errors = validate(lines, no_catch_all=args.no_catch_all)
    if errors:
        print(f"check_journal: {args.journal}: {len(errors)} violation(s)",
              file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    records = sum(1 for line in lines if line.strip())
    print(f"check_journal: {args.journal}: OK — {records} records")
    return 0


if __name__ == "__main__":
    sys.exit(main())

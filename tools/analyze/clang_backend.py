"""libclang (clang.cindex) backend.

Builds the same SourceFile model as the lexer backend, but from a real AST:
qualified names, function extents and class members come from cursors, so
template metaprogramming, operator overloads and macro-heavy code resolve
exactly. Body token streams still come from the shared tokenizer applied to
each cursor's extent — the rules consume tokens either way, which keeps the
two backends behaviourally aligned (the fixture corpus runs against
whichever backend is active).

This module is import-gated: `available()` is False wherever the clang
Python bindings are not installed (the default container), and the driver
falls back to the lexer backend. CI installs the pinned clang toolchain and
runs with --backend=cindex to get AST-grade coverage.
"""

from __future__ import annotations

from pathlib import Path

from .compile_db import CompileCommand
from .source_model import (ClassDef, EnumDef, FieldDecl, FunctionDef,
                           SourceFile, tokenize)

try:  # pragma: no cover - exercised only where libclang is installed
    from clang import cindex  # type: ignore
    _HAVE_CINDEX = True
except Exception:  # ModuleNotFoundError or missing libclang.so
    cindex = None  # type: ignore
    _HAVE_CINDEX = False


def available() -> bool:
    if not _HAVE_CINDEX:
        return False
    try:  # the module can import while the shared library is absent
        cindex.Index.create()
        return True
    except Exception:
        return False


def _qualified_name(cursor) -> str:  # pragma: no cover
    parts: list[str] = []
    c = cursor
    while c is not None and c.kind != cindex.CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _extent_text(text_lines: list[str], extent) -> str:  # pragma: no cover
    start, end = extent.start, extent.end
    if start.line == end.line:
        return text_lines[start.line - 1][start.column - 1:end.column - 1]
    chunk = [text_lines[start.line - 1][start.column - 1:]]
    chunk.extend(text_lines[start.line:end.line - 1])
    chunk.append(text_lines[end.line - 1][:end.column - 1])
    return "\n".join(chunk)


def build_from_tu(path: Path, repo_root: Path,
                  command: CompileCommand | None) -> list[SourceFile]:
    """Parses one TU and returns models for every repo-owned file it
    touches (the main file plus in-repo headers)."""  # pragma: no cover
    index = cindex.Index.create()
    args = []
    if command is not None:
        # Strip compiler binary + -c/-o pairs; keep -I/-D/-std and friends.
        skip_next = False
        for arg in command.arguments[1:]:
            if skip_next:
                skip_next = False
                continue
            if arg in ("-c", "-o"):
                skip_next = arg == "-o"
                continue
            if arg == str(path):
                continue
            args.append(arg)
    tu = index.parse(str(path), args=args)

    per_file: dict[str, SourceFile] = {}
    text_cache: dict[str, list[str]] = {}

    def model_for(file_path: str) -> SourceFile | None:
        p = Path(file_path).resolve()
        try:
            rel = p.relative_to(repo_root).as_posix()
        except ValueError:
            return None
        if rel not in per_file:
            text = p.read_text(encoding="utf-8", errors="replace")
            tokens, comments = tokenize(text)
            text_cache[rel] = text.split("\n")
            per_file[rel] = SourceFile(rel, tokens, comments, [], [], [])
        return per_file[rel]

    def visit(cursor):
        for child in cursor.get_children():
            loc_file = child.location.file
            if loc_file is None:
                visit(child)
                continue
            model = model_for(loc_file.name)
            if model is None:
                continue
            kind = child.kind
            if kind in (cindex.CursorKind.FUNCTION_DECL,
                        cindex.CursorKind.CXX_METHOD,
                        cindex.CursorKind.CONSTRUCTOR,
                        cindex.CursorKind.DESTRUCTOR,
                        cindex.CursorKind.FUNCTION_TEMPLATE):
                if child.is_definition():
                    body_text = _extent_text(text_cache[model.path],
                                             child.extent)
                    toks, _ = tokenize(body_text)
                    is_hot = any(a.spelling == "aladdin::hot"
                                 for a in child.get_children()
                                 if a.kind ==
                                 cindex.CursorKind.ANNOTATE_ATTR)
                    model.functions.append(FunctionDef(
                        name=child.spelling.split("<")[0],
                        qualified=_qualified_name(child),
                        file=model.path,
                        line=child.location.line,
                        is_hot=is_hot,
                        body=toks,
                        head=[],
                    ))
            elif kind in (cindex.CursorKind.CLASS_DECL,
                          cindex.CursorKind.STRUCT_DECL):
                if child.is_definition():
                    fields = []
                    for member in child.get_children():
                        if member.kind != cindex.CursorKind.FIELD_DECL:
                            continue
                        tt = member.type.spelling
                        # libclang does not expose guarded_by attributes as
                        # cursors; read the macro off the declaration text
                        # (same thing the lexer backend sees).
                        decl_text = _extent_text(text_cache[model.path],
                                                 member.extent)
                        guard = None
                        marker = "ALADDIN_GUARDED_BY("
                        if marker in decl_text:
                            tail = decl_text.split(marker, 1)[1]
                            guard = tail.split(")", 1)[0]
                        fields.append(FieldDecl(
                            name=member.spelling,
                            type_text=tt,
                            line=member.location.line,
                            guarded_by=guard,
                            is_mutex="Mutex" in tt or "mutex" in tt,
                            is_atomic="atomic" in tt,
                            is_const=member.type.is_const_qualified(),
                            is_condvar="condition_variable" in tt,
                        ))
                    model.classes.append(ClassDef(
                        child.spelling, _qualified_name(child),
                        model.path, child.location.line, fields))
                visit(child)
            elif kind == cindex.CursorKind.ENUM_DECL:
                enumerators = [c.spelling for c in child.get_children()
                               if c.kind ==
                               cindex.CursorKind.ENUM_CONSTANT_DECL]
                line = child.location.line
                closed = any(
                    "analyze:closed_enum" in model.comments.get(l, "")
                    for l in (line - 1, line))
                model.enums.append(EnumDef(
                    child.spelling, _qualified_name(child), model.path,
                    line, enumerators, closed))
            elif kind == cindex.CursorKind.NAMESPACE:
                visit(child)

    visit(tu.cursor)
    return list(per_file.values())

"""Diagnostic codes, allow-marker handling and reporting.

Every rule emits closed codes from the catalog below; the driver resolves
`// analyze:allow(<code>) <reason>` markers against them. A marker without
a reason is itself a violation (X001), and a marker that suppressed nothing
is stale (X002) — the suppression inventory can only shrink deliberately.
"""

from __future__ import annotations

import dataclasses
import json
import re

CATALOG: dict[str, str] = {
    # D1 — determinism
    "D101": "iteration over an unordered container in decision-path code",
    "D102": "ordered container keyed by pointer (iteration order = layout)",
    "D103": "nondeterministic source (rand/random_device/clock) in "
            "decision-path code",
    # A1 — hot-path allocation
    "A101": "heap allocation (new/make_unique/make_shared) reachable from "
            "an ALADDIN_HOT function",
    "A102": "owning-container construction reachable from an ALADDIN_HOT "
            "function",
    "A103": "container growth call (resize/reserve/assign/push_back/...) "
            "reachable from an ALADDIN_HOT function",
    "A104": "std::vector<std::vector<...>> in flow kernels (CSR regression)",
    # L1 — locking
    "L101": "mutex member guards no field (missing ALADDIN_GUARDED_BY)",
    "L102": "ALADDIN_GUARDED_BY names something that is not a member mutex",
    "L103": "mutable field without ALADDIN_GUARDED_BY in a mutex-holding "
            "class",
    "L104": "raw std::mutex/lock outside common/mutex.h (invisible to "
            "-Wthread-safety)",
    # E1 — closed-enum exhaustiveness
    "E101": "switch over a closed enum missing enumerator(s)",
    "E102": "switch over a closed enum has a default: label",
    # X — suppression hygiene
    "X001": "analyze:allow marker without a reason or with unknown code",
    "X002": "stale analyze:allow marker (suppressed nothing)",
}

ALLOW_RE = re.compile(
    r"analyze:allow\(\s*(?P<code>[A-Z]\d{3}|[A-Z]\d)\s*\)\s*(?P<reason>.*)")


@dataclasses.dataclass
class Diagnostic:
    code: str
    file: str
    line: int
    message: str
    suppressed: bool = False
    suppress_reason: str = ""

    def format(self) -> str:
        return f"{self.file}:{self.line}: {self.code}: {self.message}"


@dataclasses.dataclass
class AllowMarker:
    file: str
    line: int
    code: str      # "A103" or a family prefix like "A1"
    reason: str
    used: bool = False

    def covers(self, code: str) -> bool:
        return code == self.code or code.startswith(self.code)


def collect_allows(path: str,
                   comments: dict[int, str]) -> tuple[list[AllowMarker],
                                                      list[Diagnostic]]:
    """Parses analyze:allow markers out of a file's comments. Malformed
    markers (no code, unknown code, missing reason) come back as X001."""
    markers: list[AllowMarker] = []
    malformed: list[Diagnostic] = []
    for line, text in sorted(comments.items()):
        if "analyze:allow" not in text:
            continue
        # Backtick-quoted mentions are documentation of the syntax, not
        # markers (`analyze:allow(...) ...` in a doc comment).
        idx = text.find("analyze:allow")
        if idx > 0 and text[idx - 1] == "`":
            continue
        m = ALLOW_RE.search(text)
        if not m:
            malformed.append(Diagnostic(
                "X001", path, line,
                "malformed analyze:allow marker (expected "
                "'analyze:allow(<code>) <reason>')"))
            continue
        code, reason = m.group("code"), m.group("reason").strip()
        known = code in CATALOG or any(c.startswith(code) for c in CATALOG)
        if not known:
            malformed.append(Diagnostic(
                "X001", path, line, f"unknown rule code '{code}' in "
                "analyze:allow marker"))
            continue
        if not reason:
            malformed.append(Diagnostic(
                "X001", path, line,
                f"analyze:allow({code}) without a reason — every "
                "suppression must say why"))
            continue
        markers.append(AllowMarker(path, line, code, reason))
    return markers, malformed


def apply_allows(diags: list[Diagnostic],
                 markers: list[AllowMarker]) -> list[Diagnostic]:
    """Marks diagnostics suppressed when an allow marker for the same file
    covers the code on the same or the preceding line (repo style puts the
    marker trailing the offending line or on its own line just above).
    Appends X002 for markers that suppressed nothing."""
    by_file: dict[str, list[AllowMarker]] = {}
    for marker in markers:
        by_file.setdefault(marker.file, []).append(marker)
    for d in diags:
        # Same-line marker wins over a neighbour's: consecutive flagged lines
        # each carrying their own marker must not have an adjacent marker's
        # +/-1 window steal the match and leave their own marker "stale".
        candidates = by_file.get(d.file, ())
        for want in (d.line, d.line - 1, d.line + 1):
            hit = next((m for m in candidates
                        if m.covers(d.code) and m.line == want), None)
            if hit is not None:
                d.suppressed = True
                d.suppress_reason = hit.reason
                hit.used = True
                break
    out = list(diags)
    for marker in markers:
        if not marker.used:
            out.append(Diagnostic(
                "X002", marker.file, marker.line,
                f"stale analyze:allow({marker.code}) — it suppresses "
                "nothing; delete it"))
    return out


def render_text(diags: list[Diagnostic], *, show_suppressed: bool) -> str:
    lines = []
    active = [d for d in diags if not d.suppressed]
    for d in sorted(active, key=lambda d: (d.file, d.line, d.code)):
        lines.append(d.format())
    if show_suppressed:
        for d in sorted((d for d in diags if d.suppressed),
                        key=lambda d: (d.file, d.line, d.code)):
            lines.append(f"{d.format()} [suppressed: {d.suppress_reason}]")
    n_active = len(active)
    n_supp = len(diags) - n_active
    lines.append(f"aladdin-analyze: {n_active} violation(s), "
                 f"{n_supp} suppressed")
    return "\n".join(lines)


def render_json(diags: list[Diagnostic], backend: str,
                files_scanned: int) -> str:
    payload = {
        "tool": "aladdin-analyze",
        "backend": backend,
        "files_scanned": files_scanned,
        "violations": [
            dataclasses.asdict(d) for d in
            sorted(diags, key=lambda d: (d.file, d.line, d.code))
        ],
        "catalog": CATALOG,
    }
    return json.dumps(payload, indent=2)

"""Rule scoping for aladdin-analyze.

Everything here is policy, not mechanism: which directories are decision
path, which types are sanctioned scratch, which files are exempt from a
rule and *why*. Each exemption carries its reason inline — `--list-allows`
prints this table together with the in-source analyze:allow markers so the
whole suppression inventory is one command away.
"""

from __future__ import annotations

import fnmatch

# --------------------------------------------------------------------------
# D1 — determinism
# --------------------------------------------------------------------------

# Decision-path scope: everything under src/ is in scope; exemptions below
# carve out the sanctioned wrappers. tests/, bench/ and tools/ are out of
# scope (a test may hash-iterate all it wants).
D1_SCOPE = ("src/",)

# Files allowed to touch nondeterministic *sources* because they exist to
# wrap them behind deterministic (seeded / monotonic / stats-only) APIs.
D103_EXEMPT = {
    "src/common/rng.h": "seeded PRNG wrapper — the one sanctioned source",
    "src/common/rng.cpp": "seeded PRNG wrapper — the one sanctioned source",
    "src/common/timer.h": "WallTimer wraps steady_clock for stats-only use",
    "src/obs/metrics.cpp": "MonotonicNowNs: trace/phase timestamps, "
                           "never scheduling inputs",
    "src/obs/trace.cpp": "trace epoch timestamps are observability-only",
}

# --------------------------------------------------------------------------
# A1 — allocation discipline on the hot path
# --------------------------------------------------------------------------

# Types whose methods are allowed on the hot path even though they *may*
# allocate: their growth is amortised against high-water marks that the
# zero-alloc steady-state tests (tests/test_alloc_guard.cpp) pin at runtime.
A1_EXEMPT_CLASSES = {
    "Workspace", "StampedArray", "RingQueue", "Arena", "ArenaVector",
}

# Callees never followed by the transitive walk. Mostly: runtime-gated
# validation and instrumentation that is documented cold-per-tick. Each
# entry is (qualified-name substring) -> reason.
A1_EXEMPT_CALLEES = {
    "CheckFail": "failure path — allocation while dying is fine",
    "DcheckFail": "failure path — allocation while dying is fine",
    "CrossCheckOutcome": "post-solve audit, compiled out of release builds "
                         "(ALADDIN_DCHECK_IS_ON regions)",
    "CheckConsistency": "full-state validation scan, run under DCHECK "
                        "builds / --audit only",
    "ValidateInvariants": "graph validation, run under DCHECK builds / "
                          "explicit test calls only",
}

# Files (exact path or trailing-slash prefix) whose functions the walk does
# not descend into / flag. These are reachable from hot roots but run under
# explicit runtime gates (flags or DCHECK builds), so their allocations are
# not steady-state allocations — or they are reference implementations whose
# allocation behaviour is deliberately preserved.
A1_EXEMPT_FILES = {
    "src/baselines/": "reference baselines (Firmament/Medea/Go-Kube) keep "
                      "their papers' allocation behaviour — the benches "
                      "measure them as-is",
    "src/cluster/audit.cpp": "post-solve audit, gated by --audit/DCHECK",
    "src/obs/journal.cpp": "journal emission, gated by --journal",
    "src/obs/trace.cpp": "trace emission, gated by --trace",
    "src/obs/metrics.cpp": "interning is once-per-callsite via static refs",
    "src/common/log.cpp": "logging: rate-limited, off the steady-state path",
    "src/common/check.cpp": "CHECK failure formatting — terminating path",
    "src/common/bench_json.cpp": "bench output, never inside a tick",
    "src/common/stats.cpp": "summary statistics at run end",
}

# A104 (nested vector-of-vectors) keeps the old lint rule's file scope: the
# flow kernels, where vector<vector<>> was the historic CSR-regression shape.
A104_GLOB = "src/flow/*"

# --------------------------------------------------------------------------
# L1 — locking discipline
# --------------------------------------------------------------------------

# The concurrency surface: every file that owns a mutex. L101-L103 check
# these; L104 (raw std::mutex outside the annotated wrapper) applies to all
# of src/ so new code cannot silently opt out of -Wthread-safety.
L1_SURFACE = (
    "src/common/thread_pool.h",
    "src/common/thread_pool.cpp",
    "src/common/log.cpp",
    "src/obs/metrics.h",
    "src/obs/metrics.cpp",
    "src/obs/trace.cpp",
    "src/obs/journal.cpp",
    "src/obs/export.h",
    "src/obs/export.cpp",
)
L104_EXEMPT = {
    "src/common/mutex.h": "the annotated wrapper itself",
}

# --------------------------------------------------------------------------
# E1 — closed-enum exhaustiveness (scope: all of src/)
# --------------------------------------------------------------------------

E1_SCOPE = ("src/",)

# Enumerators that are counters/sentinels, not values a switch must cover.
E1_SENTINELS = {"kCount", "kNumValues", "kMax"}


def in_scope(path: str, prefixes: tuple[str, ...]) -> bool:
    return any(path.startswith(p) for p in prefixes)


def file_exempt(path: str, table: dict[str, str]) -> bool:
    """Exact path or directory-prefix (trailing '/') membership."""
    if path in table:
        return True
    return any(key.endswith("/") and path.startswith(key) for key in table)


def matches(path: str, glob: str) -> bool:
    return fnmatch.fnmatch(path, glob)

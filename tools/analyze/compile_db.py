"""compile_commands.json discovery and loading.

Every CMake preset exports a compile database (CMAKE_EXPORT_COMPILE_COMMANDS
is forced on in the top-level CMakeLists). Discovery order:

  1. --compile-db PATH           (explicit file or its directory)
  2. --preset NAME               (binaryDir parsed from CMakePresets.json)
  3. auto: every configured preset's binaryDir, newest database wins

The lexer backend only needs the database for the translation-unit list
(which .cpp files the build actually compiles); the cindex backend also
feeds each entry's arguments to libclang.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path


@dataclasses.dataclass
class CompileCommand:
    file: str            # absolute, normalised
    directory: str
    arguments: list[str]


class CompileDbError(RuntimeError):
    pass


def preset_binary_dirs(repo_root: Path) -> dict[str, Path]:
    """Preset name -> binaryDir from CMakePresets.json (expanding the only
    macro the file uses, ${sourceDir})."""
    presets_path = repo_root / "CMakePresets.json"
    if not presets_path.is_file():
        return {}
    data = json.loads(presets_path.read_text())
    out: dict[str, Path] = {}
    for preset in data.get("configurePresets", []):
        binary_dir = preset.get("binaryDir")
        if not binary_dir:
            continue
        binary_dir = binary_dir.replace("${sourceDir}", str(repo_root))
        out[preset["name"]] = Path(binary_dir)
    return out


def locate(repo_root: Path, *, compile_db: str | None = None,
           preset: str | None = None) -> Path:
    """Resolves the compile database path per the discovery order above."""
    if compile_db:
        path = Path(compile_db)
        if path.is_dir():
            path = path / "compile_commands.json"
        if not path.is_file():
            raise CompileDbError(f"no compile database at {path}")
        return path
    dirs = preset_binary_dirs(repo_root)
    if preset:
        if preset not in dirs:
            known = ", ".join(sorted(dirs)) or "<none>"
            raise CompileDbError(
                f"unknown preset '{preset}' (CMakePresets.json has: {known})")
        path = dirs[preset] / "compile_commands.json"
        if not path.is_file():
            raise CompileDbError(
                f"preset '{preset}' is not configured ({path} missing) — "
                f"run: cmake --preset {preset}")
        return path
    candidates = [d / "compile_commands.json" for d in dirs.values()]
    existing = [p for p in candidates if p.is_file()]
    if not existing:
        tried = ", ".join(str(p) for p in candidates) or "<no presets>"
        raise CompileDbError(
            "no compile database found (tried: " + tried + ") — configure "
            "any preset first, e.g.: cmake --preset release")
    return max(existing, key=lambda p: p.stat().st_mtime)


def load(path: Path) -> list[CompileCommand]:
    entries = json.loads(path.read_text())
    commands: list[CompileCommand] = []
    for entry in entries:
        file = os.path.normpath(os.path.join(entry["directory"],
                                             entry["file"]))
        if "arguments" in entry:
            arguments = list(entry["arguments"])
        else:
            # CMake writes a single "command" string; a naive split is fine
            # for the flags this repo uses (no quoted spaces).
            arguments = entry.get("command", "").split()
        commands.append(CompileCommand(file, entry["directory"], arguments))
    return commands


def translation_units(commands: list[CompileCommand],
                      repo_root: Path) -> list[Path]:
    """The repo-owned TU files from the database (third-party/_deps
    excluded), deduplicated and sorted."""
    out: set[Path] = set()
    for cmd in commands:
        path = Path(cmd.file)
        try:
            rel = path.relative_to(repo_root)
        except ValueError:
            continue
        if rel.parts and rel.parts[0] in ("build", "build-asan",
                                          "build-tsan", "_deps"):
            continue
        out.add(path)
    return sorted(out)

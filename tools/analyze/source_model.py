"""Backend-neutral source model for aladdin-analyze.

Both backends (the built-in lexer and clang.cindex) reduce a C++ file to the
same small model the rules consume:

  SourceFile
    tokens            flat token stream (comments/preprocessor stripped)
    comments          per-line comment text (allow markers, enum markers)
    functions         function *definitions* with body token ranges
    classes           class/struct definitions with member fields
    enums             enum definitions with enumerator lists

The lexer is not a C++ parser; it is a bracket-matching heuristic tuned to
this repo's style (clang-format, one namespace per file, no macros that
open/close braces). That is enough to be exact on this codebase, and the
fixture corpus in tests/analyze/ pins the behaviour. Where the heuristic
must guess (is this brace a function body or an initializer?), it prefers
false *positives* for rules with an escape hatch and false *negatives* only
for constructs the repo bans anyway.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Iterable

# --------------------------------------------------------------------------
# Tokens
# --------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<id>      [A-Za-z_]\w* )
    | (?P<num>     \.?\d(?:[\w.]|[eEpP][+-])* )
    | (?P<str>     (?:u8|u|U|L)?"(?:[^"\\\n]|\\.)*"(?:\w+)? )
    | (?P<char>    (?:u8|u|U|L)?'(?:[^'\\\n]|\\.)*'(?:\w+)? )
    | (?P<punct>   ->\*|->|\+\+|--|<<=|>>=|<=>|<<|<=|>=|==|!=|&&|\|\||
                   \+=|-=|\*=|/=|%=|&=|\|=|\^=|::|\.\.\.|\.\*|[{}()\[\];:,.?~!%^&*+=|<>/-]
      )
    # NB: `>>` is deliberately NOT a single token — `map<K, vector<V>>`
    # closes two template lists and the angle-tracking in the model and
    # rules counts each `>` separately. (Right-shift becomes `>` `>` too;
    # no rule matches on shifts, so nothing is lost.)
    """,
    re.VERBOSE,
)

LINE_COMMENT_RE = re.compile(r"//[^\n]*")
BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
RAW_STRING_RE = re.compile(r'R"([^()\s\\]{0,16})\((?:.|\n)*?\)\1"')

KEYWORDS = frozenset(
    """
    alignas alignof asm auto bool break case catch char char8_t char16_t
    char32_t class concept const consteval constexpr constinit const_cast
    continue co_await co_return co_yield decltype default delete do double
    dynamic_cast else enum explicit export extern false float for friend
    goto if inline int long mutable namespace new noexcept nullptr operator
    private protected public register reinterpret_cast requires return
    short signed sizeof static static_assert static_cast struct switch
    template this thread_local throw true try typedef typeid typename union
    unsigned using virtual void volatile wchar_t while final override
    """.split()
)


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str  # "id" | "num" | "str" | "char" | "punct"
    text: str
    line: int


def tokenize(text: str) -> tuple[list[Token], dict[int, str]]:
    """Returns (tokens, comments) where comments maps line -> comment text.

    Preprocessor directives are dropped (the model is per-file, unexpanded);
    raw strings are replaced before comment stripping so a // inside one is
    not mistaken for a comment.
    """
    comments: dict[int, str] = {}

    def line_of(pos: int) -> int:
        return text.count("\n", 0, pos) + 1

    def stash_comment(match: re.Match[str]) -> str:
        body = match.group(0)
        first = line_of(match.start())
        for offset, chunk in enumerate(body.split("\n")):
            stripped = chunk.strip().lstrip("/*").rstrip("*/").strip()
            if stripped:
                prev = comments.get(first + offset, "")
                comments[first + offset] = (prev + " " + stripped).strip()
        # Keep the newlines so later line numbers stay correct.
        return "\n" * body.count("\n")

    # Order matters: raw strings may contain // and /*.
    text = RAW_STRING_RE.sub(lambda m: '"raw"' + "\n" * m.group(0).count("\n"),
                             text)
    text = BLOCK_COMMENT_RE.sub(stash_comment, text)
    text = LINE_COMMENT_RE.sub(stash_comment, text)

    tokens: list[Token] = []
    for raw_line_no, line in enumerate(text.split("\n"), start=1):
        stripped = line.lstrip()
        if stripped.startswith("#"):
            continue  # preprocessor: includes/defines are not modelled
        for match in TOKEN_RE.finditer(line):
            kind = match.lastgroup or "punct"
            tokens.append(Token(kind, match.group(0), raw_line_no))
    return tokens, comments


# --------------------------------------------------------------------------
# Model entities
# --------------------------------------------------------------------------


@dataclasses.dataclass
class FunctionDef:
    name: str              # unqualified, e.g. "Schedule"
    qualified: str         # e.g. "aladdin::core::AladdinScheduler::Schedule"
    file: str
    line: int
    is_hot: bool
    body: list[Token]      # tokens strictly inside the outermost {}
    head: list[Token]      # tokens of the declarator (return type .. before {)


@dataclasses.dataclass
class FieldDecl:
    name: str
    type_text: str
    line: int
    guarded_by: str | None  # annotation argument text, or None
    is_mutex: bool
    is_atomic: bool
    is_const: bool
    is_condvar: bool


@dataclasses.dataclass
class ClassDef:
    name: str
    qualified: str
    file: str
    line: int
    fields: list[FieldDecl]


@dataclasses.dataclass
class EnumDef:
    name: str
    qualified: str
    file: str
    line: int
    enumerators: list[str]
    closed: bool  # carries a // analyze:closed_enum marker


@dataclasses.dataclass
class SourceFile:
    path: str              # repo-relative, forward slashes
    tokens: list[Token]
    comments: dict[int, str]
    functions: list[FunctionDef]
    classes: list[ClassDef]
    enums: list[EnumDef]


# --------------------------------------------------------------------------
# Structural pass
# --------------------------------------------------------------------------

_CONTROL_KEYWORDS = frozenset(
    {"if", "for", "while", "switch", "catch", "return", "do", "else"}
)
_SPAN_TERMINATORS = frozenset({";", "{", "}"})

CLOSED_ENUM_MARKER = "analyze:closed_enum"
MUTEX_TYPE_TOKENS = frozenset({"Mutex", "mutex", "shared_mutex"})
GUARD_MACROS = frozenset({"ALADDIN_GUARDED_BY", "ALADDIN_PT_GUARDED_BY"})
_FIELD_ATTR_MACROS = GUARD_MACROS | {"alignas"}


def _matching(tokens: list[Token], open_idx: int,
              open_ch: str, close_ch: str) -> int:
    """Index of the token closing tokens[open_idx], or len(tokens)."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        t = tokens[i].text
        if t == open_ch:
            depth += 1
        elif t == close_ch:
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)


def _span_start(tokens: list[Token], brace_idx: int) -> int:
    """First token of the declaration that ends at tokens[brace_idx] == '{'.

    Walks back to the previous top-level terminator, skipping over balanced
    () <> [] so a ';' inside a default argument does not cut the span, and
    skipping access-specifier colons ('public:' etc.).
    """
    i = brace_idx - 1
    depth = 0
    while i >= 0:
        t = tokens[i].text
        if t in (")", ">", "]"):
            depth += 1
        elif t in ("(", "<", "["):
            depth = max(0, depth - 1)
        elif depth == 0:
            if t in _SPAN_TERMINATORS:
                return i + 1
            if (t == ":" and i >= 1
                    and tokens[i - 1].text in ("public", "private",
                                               "protected")):
                return i + 1
        i -= 1
    return 0


def _find_paramlist(span: list[Token]) -> tuple[int, int] | None:
    """(open, close) indices of the first depth-0 '(' in span, if any."""
    depth_angle = 0
    for i, tok in enumerate(span):
        t = tok.text
        if t == "(" and depth_angle == 0:
            return i, _matching(span, i, "(", ")")
        if t == "<":
            depth_angle += 1
        elif t == ">":
            depth_angle = max(0, depth_angle - 1)
    return None


def _strip_ctor_initializers(span: list[Token], close_paren: int) -> int:
    """Length of the declarator proper: cuts `: member_(..), ...` tails."""
    i = close_paren + 1
    while i < len(span):
        t = span[i].text
        if t == ":":
            return i
        if t == "(":  # noexcept(...), ALADDIN_REQUIRES(...)
            i = _matching(span, i, "(", ")") + 1
            continue
        i += 1
    return len(span)


def _function_name(span: list[Token], open_paren: int) -> str | None:
    """Function name ending right before span[open_paren], or None.

    Accepts `Name`, `Qualified::Name`, `operator<tok>`, `~Name`. Rejects
    spans whose name position is a keyword or not an identifier (those are
    initializers like `int x(3);` filtered earlier, or control flow, which
    never reaches here because this pass runs outside function bodies).
    """
    i = open_paren - 1
    if i < 0:
        return None
    # operator() / operator[] / operator<< / operator bool ...
    for back in range(max(0, i - 2), i + 1):
        if span[back].text == "operator":
            return "operator" + "".join(t.text for t in span[back + 1:i + 1])
    tok = span[i]
    if tok.kind != "id" or tok.text in KEYWORDS:
        return None
    name = tok.text
    if i >= 1 and span[i - 1].text == "~":
        name = "~" + name
    return name


def _skip_member_brace_inits(tokens: list[Token], i: int) -> int:
    """tokens[i] opens a `member_{...}` brace-init inside a ctor initializer
    list; returns the index of the '{' that opens the function body."""
    n = len(tokens)
    k = i
    while k < n and tokens[k].text == "{":
        close = _matching(tokens, k, "{", "}")
        j = close + 1
        if j < n and tokens[j].text == "{":
            return j  # `...} {` — the body follows immediately
        while j < n and tokens[j].text != "{":
            j += 1
        if j < n and tokens[j - 1].text == ")":
            return j  # a paren-init member precedes the body brace
        k = j
    return k


class _Scope:
    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str):
        self.kind = kind  # "namespace" | "class" | "enum" | "skip"
        self.name = name


def build_source_file(path: str, text: str) -> SourceFile:
    tokens, comments = tokenize(text)
    functions: list[FunctionDef] = []
    classes: list[ClassDef] = []
    enums: list[EnumDef] = []

    scopes: list[_Scope] = []

    def qualifier() -> str:
        parts = [s.name for s in scopes
                 if s.kind in ("namespace", "class") and s.name]
        return "::".join(parts)

    def qualify(name: str) -> str:
        q = qualifier()
        return f"{q}::{name}" if q else name

    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        if tok.text == "}":
            if scopes:
                scopes.pop()
            i += 1
            continue
        if tok.text != "{":
            i += 1
            continue

        start = _span_start(tokens, i)
        span = tokens[start:i]
        span_texts = [t.text for t in span]

        # -------- namespace ------------------------------------------------
        if "namespace" in span_texts:
            ns_idx = span_texts.index("namespace")
            name_parts = [t.text for t in span[ns_idx + 1:]
                          if t.kind == "id" or t.text == "::"]
            scopes.append(_Scope("namespace", "".join(name_parts)))
            i += 1
            continue

        # -------- enum -----------------------------------------------------
        if "enum" in span_texts:
            close = _matching(tokens, i, "{", "}")
            names = [t.text for t in span if t.kind == "id"
                     and t.text not in ("enum", "class", "struct")]
            # `enum class Cause : std::uint8_t` -> drop underlying-type ids.
            if ":" in span_texts:
                cut = span_texts.index(":")
                names = [t.text for t in span[:cut] if t.kind == "id"
                         and t.text not in ("enum", "class", "struct")]
            enum_name = names[-1] if names else "<anonymous>"
            enumerators: list[str] = []
            expect_name = True
            for t in tokens[i + 1:close]:
                if expect_name and t.kind == "id":
                    enumerators.append(t.text)
                    expect_name = False
                elif t.text == ",":
                    expect_name = True
            marker_line = span[0].line if span else tok.line
            closed = any(
                CLOSED_ENUM_MARKER in comments.get(line, "")
                for line in range(marker_line - 1, tok.line + 1)
            )
            enums.append(EnumDef(enum_name, qualify(enum_name), path,
                                 marker_line, enumerators, closed))
            i = close + 1
            continue

        in_class = bool(scopes) and scopes[-1].kind == "class"
        at_type_scope = not scopes or scopes[-1].kind in ("namespace", "class")

        # -------- function definition --------------------------------------
        paren = _find_paramlist(span) if at_type_scope else None
        if paren is not None:
            open_p, close_p = paren
            name = _function_name(span, open_p)
            # `= {` after the param list means an initializer, not a body:
            #   std::array<...> kTable(..)... never happens here; but
            #   `auto f = [](int x) { ... }` at file scope does. Treat a
            #   span containing a depth-0 '=' before the '(' as a variable.
            eq_before = any(t.text == "=" for t in span[:open_p])
            if name and not eq_before and name not in _CONTROL_KEYWORDS:
                head_end = _strip_ctor_initializers(span, close_p)
                head = span[:head_end]
                body_open = i
                if (span and span[-1].kind == "id"
                        and any(t.text == ":" for t in span[close_p + 1:])):
                    # `Ctor() : member_{init} {` — this '{' belongs to a
                    # member brace-init, not the body.
                    body_open = _skip_member_brace_inits(tokens, i)
                close = _matching(tokens, body_open, "{", "}")
                is_hot = any(t.text == "ALADDIN_HOT" for t in head)
                functions.append(FunctionDef(
                    name=name.split("::")[-1],
                    qualified=qualify(name),
                    file=path,
                    line=span[open_p - 1].line,
                    is_hot=is_hot,
                    body=tokens[body_open + 1:close],
                    head=head,
                ))
                i = close + 1
                continue

        # -------- class/struct ---------------------------------------------
        class_kw = next((k for k in ("class", "struct") if k in span_texts),
                        None)
        if class_kw is not None and paren is None and at_type_scope:
            kw_idx = span_texts.index(class_kw)
            base_cut = len(span)
            depth = 0
            for j in range(kw_idx + 1, len(span)):
                t = span[j].text
                if t == "<":
                    depth += 1
                elif t == ">":
                    depth = max(0, depth - 1)
                elif t == ":" and depth == 0:
                    base_cut = j
                    break
            names = [t.text for t in span[kw_idx + 1:base_cut]
                     if t.kind == "id" and t.text not in KEYWORDS
                     and not t.text.startswith("ALADDIN_")]
            cname = names[-1] if names else "<anonymous>"
            close = _matching(tokens, i, "{", "}")
            cdef = ClassDef(cname, qualify(cname), path,
                            span[0].line if span else tok.line, [])
            classes.append(cdef)
            _collect_fields(tokens, i + 1, close, cdef)
            scopes.append(_Scope("class", cname))
            i += 1
            continue

        # -------- anything else: initializer block, lambda, array init ----
        scopes.append(_Scope("skip", ""))
        i += 1

    return SourceFile(path, tokens, comments, functions, classes, enums)


def _collect_fields(tokens: list[Token], start: int, end: int,
                    cdef: ClassDef) -> None:
    """Member variables declared at depth 0 between start and end."""
    i = start
    span_begin = start
    while i < end:
        t = tokens[i].text
        if t in ("{", "(", "["):
            close_ch = {"{": "}", "(": ")", "[": "]"}[t]
            is_def_body = t == "{" and _looks_like_definition_head(
                tokens[span_begin:i])
            i = _matching(tokens, i, t, close_ch) + 1
            # A method/nested-type body terminates the current span; a field
            # brace-initializer (`std::atomic<bool> x_{false}`) does not —
            # the field's ';' still closes it below.
            if is_def_body:
                span_begin = i
            continue
        if t == ";":
            _maybe_field(tokens[span_begin:i], cdef)
            span_begin = i + 1
        elif (t == ":" and i >= 1
              and tokens[i - 1].text in ("public", "private", "protected")):
            span_begin = i + 1
        i += 1


def _looks_like_definition_head(head: list[Token]) -> bool:
    """True if `head {` opens a nested type or method body rather than a
    member brace-initializer."""
    if not head:
        return True
    texts = [t.text for t in head]
    if any(t in ("class", "struct", "enum", "union", "namespace")
           for t in texts):
        return True
    angle = 0
    for j, t in enumerate(texts):
        if t == "<":
            angle += 1
        elif t == ">":
            angle = max(0, angle - 1)
        elif angle == 0:
            if t == "=":
                return False  # `Type x = {...}` initializer
            if t == "(":
                prev = texts[j - 1] if j else ""
                # A call-style paren (method definition) — attribute macros
                # like alignas/GUARDED_BY take parens but stay field decls.
                return prev not in _FIELD_ATTR_MACROS
    return False  # plain `Type name_{init}`


def _maybe_field(span: list[Token], cdef: ClassDef) -> None:
    texts = [t.text for t in span]
    if not span:
        return
    skip_lead = {"using", "typedef", "friend", "static", "enum",
                 "class", "struct", "template", "public", "private",
                 "protected", "explicit", "virtual", "operator"}
    if texts[0] in skip_lead or "operator" in texts:
        return
    # Method declarations have a depth-0 '(' before any '=' / '{'.
    angle = 0
    for j, t in enumerate(texts):
        if t == "<":
            angle += 1
        elif t == ">":
            angle = max(0, angle - 1)
        elif angle == 0:
            if t in ("=", "{"):
                break
            if t == "(":
                # alignas(64) / annotation macros are attributes, not calls.
                prev = texts[j - 1] if j else ""
                if prev in _FIELD_ATTR_MACROS:
                    continue
                return
    # Find the declared name: the identifier just before the first of
    # '=', '{', '[', a guard macro, or end-of-span.
    guard: str | None = None
    name: str | None = None
    j = 0
    angle = 0
    while j < len(span):
        t = texts[j]
        if t == "<":
            angle += 1
        elif t == ">":
            angle = max(0, angle - 1)
        elif angle == 0:
            if t in GUARD_MACROS:
                close = _matching(span, j + 1, "(", ")")
                guard = "".join(x.text for x in span[j + 2:close])
                if name is None and j >= 1 and span[j - 1].kind == "id":
                    name = span[j - 1].text
                j = close + 1
                continue
            if t in ("=", "{", "["):
                if name is None and j >= 1 and span[j - 1].kind == "id":
                    name = span[j - 1].text
                # keep scanning: the guard macro may come after `= init`?
                # (repo style puts it before, but be permissive)
        j += 1
    if name is None:
        trailing = [t for t in span if t.kind == "id"
                    and t.text not in KEYWORDS
                    and not t.text.startswith("ALADDIN_")]
        if not trailing:
            return
        name = trailing[-1].text
    type_tokens = []
    for t in span:
        if t.text == name and t.kind == "id":
            break
        type_tokens.append(t.text)
    type_text = " ".join(type_tokens)
    is_mutex = any(t in MUTEX_TYPE_TOKENS for t in type_tokens)
    is_condvar = "condition_variable" in type_tokens or \
        "condition_variable_any" in type_tokens
    cdef.fields.append(FieldDecl(
        name=name,
        type_text=type_text,
        line=span[0].line,
        guarded_by=guard,
        is_mutex=is_mutex,
        is_atomic="atomic" in type_tokens,
        is_const="const" in type_tokens or "constexpr" in type_tokens,
        is_condvar=is_condvar,
    ))


# --------------------------------------------------------------------------
# Body helpers shared by rules
# --------------------------------------------------------------------------


def iter_switches(body: list[Token]) -> Iterable[tuple[Token, list[Token]]]:
    """Yields (switch_token, body_tokens) for each switch in `body`,
    including nested ones."""
    for i, tok in enumerate(body):
        if tok.kind == "id" and tok.text == "switch":
            if i + 1 < len(body) and body[i + 1].text == "(":
                cond_close = _matching(body, i + 1, "(", ")")
                if cond_close + 1 < len(body) and \
                        body[cond_close + 1].text == "{":
                    close = _matching(body, cond_close + 1, "{", "}")
                    yield tok, body[cond_close + 2:close]


def call_names(body: list[Token]) -> Iterable[tuple[str, Token]]:
    """(callee_name, token) for each `name(` occurrence that looks like a
    call (not a declaration keyword, not a macro-style ALL_CAPS name)."""
    for i, tok in enumerate(body):
        if tok.kind != "id" or tok.text in KEYWORDS:
            continue
        if i + 1 < len(body) and body[i + 1].text == "(":
            yield tok.text, tok
        elif (i + 1 < len(body) and body[i + 1].text == "<"):
            # templated call: name<...>(...)
            close = _matching(body, i + 1, "<", ">")
            if close + 1 < len(body) and body[close + 1].text == "(":
                yield tok.text, tok

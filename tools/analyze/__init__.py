"""aladdin-analyze: repo-specific static analysis for the Aladdin tree.

Enforces the invariants the compiler and clang-tidy cannot express:

  D1  determinism   — no iteration over unordered containers, no
                      pointer-keyed ordering, no nondeterministic sources
                      (rand / random_device / raw clock reads) in
                      decision-path code;
  A1  allocation    — ALADDIN_HOT functions and their transitive callees
                      must not heap-allocate outside Arena / Workspace;
  L1  locking       — the concurrency surface declares its lock discipline
                      with ALADDIN_GUARDED_BY and uses the annotated Mutex;
  E1  exhaustiveness— switches over closed enums (// analyze:closed_enum)
                      cover every enumerator and never carry default:.

Two backends produce the same translation-unit model the rules consume:
the libclang backend (clang.cindex, AST-grade — used automatically when the
bindings are importable, e.g. in CI where clang is pinned) and a built-in
lexer backend with no dependencies beyond the standard library. See
DESIGN.md §8 for the rule catalog and escape-hatch policy.
"""

__version__ = "1.0"

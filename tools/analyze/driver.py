"""aladdin-analyze driver: file discovery, backend selection, reporting.

Usage (from the repo root; also exposed as `ctest -R analyze`):

    python3 -m tools.analyze                       # newest preset's DB
    python3 -m tools.analyze --preset asan         # that preset's DB
    python3 -m tools.analyze --backend cindex      # force AST backend
    python3 -m tools.analyze --json out.json       # machine-readable report
    python3 -m tools.analyze --list-allows         # suppression inventory
    python3 -m tools.analyze --fixture f.cpp ...   # corpus mode (tests)

Exit status 0 = clean; 1 = violations; 2 = usage/environment error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import clang_backend, compile_db, config, rules
from .diagnostics import (CATALOG, AllowMarker, Diagnostic, apply_allows,
                          collect_allows, render_json, render_text)
from .source_model import SourceFile, build_source_file

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="aladdin-analyze",
        description="Static enforcement of the Aladdin determinism, "
                    "allocation, locking and exhaustiveness invariants.")
    parser.add_argument("--backend", choices=("auto", "lex", "cindex"),
                        default="auto",
                        help="auto picks cindex when the clang bindings are "
                             "importable, else the built-in lexer")
    parser.add_argument("--preset", help="CMake preset whose compile "
                        "database to use (default: newest configured)")
    parser.add_argument("--compile-db", help="explicit compile_commands.json "
                        "(file or its directory)")
    parser.add_argument("--rules", help="comma-separated rule families "
                        "(D1,A1,L1,E1); default all")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the full report as JSON")
    parser.add_argument("--list-allows", action="store_true",
                        help="print every analyze:allow marker and config "
                             "exemption with its reason, then exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed diagnostics in the report")
    parser.add_argument("--fixture", action="store_true",
                        help="treat the given files as the whole world "
                             "(widens every rule scope to them)")
    parser.add_argument("files", nargs="*",
                        help="restrict analysis to these files (with "
                             "--fixture: the fixture TUs)")
    return parser.parse_args(argv)


def _discover_files(args: argparse.Namespace) -> list[Path]:
    if args.files:
        return [Path(f).resolve() for f in args.files]
    db_path = compile_db.locate(REPO_ROOT, compile_db=args.compile_db,
                                preset=args.preset)
    commands = compile_db.load(db_path)
    tus = compile_db.translation_units(commands, REPO_ROOT)
    # Headers are not TUs but carry the class/field/enum declarations the
    # rules need; scan every header under src/ alongside the TU list.
    headers = sorted((REPO_ROOT / "src").rglob("*.h"))
    seen: set[Path] = set()
    out: list[Path] = []
    for p in list(tus) + headers:
        if p not in seen and p.suffix in (".cpp", ".h", ".cc", ".hpp"):
            seen.add(p)
            out.append(p)
    return out


def _build_models(paths: list[Path], backend: str,
                  args: argparse.Namespace) -> tuple[list[SourceFile], str]:
    if backend == "auto":
        backend = "cindex" if clang_backend.available() else "lex"
    if backend == "cindex":
        if not clang_backend.available():
            print("aladdin-analyze: --backend=cindex requested but the "
                  "clang Python bindings are unavailable", file=sys.stderr)
            raise SystemExit(2)
        commands: dict[str, compile_db.CompileCommand] = {}
        if not args.fixture:
            try:
                db_path = compile_db.locate(REPO_ROOT,
                                            compile_db=args.compile_db,
                                            preset=args.preset)
                commands = {c.file: c for c in compile_db.load(db_path)}
            except compile_db.CompileDbError:
                pass  # headers/fixtures parse fine without flags
        merged: dict[str, SourceFile] = {}
        for path in paths:
            if path.suffix not in (".cpp", ".cc"):
                continue  # headers arrive via the TUs that include them
            for model in clang_backend.build_from_tu(
                    path, REPO_ROOT, commands.get(str(path))):
                merged[model.path] = model
        # Headers no TU includes (or fixture headers) still need models.
        for path in paths:
            rel = _rel(path)
            if rel not in merged:
                merged[rel] = build_source_file(
                    rel, path.read_text(encoding="utf-8"))
        return list(merged.values()), "cindex"
    models = [build_source_file(_rel(p), p.read_text(encoding="utf-8"))
              for p in paths]
    return models, "lex"


def _rel(path: Path) -> str:
    try:
        return path.resolve().relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def _list_allows(models: list[SourceFile]) -> int:
    rows: list[str] = []
    for model in models:
        markers, malformed = collect_allows(model.path, model.comments)
        for m in markers:
            rows.append(f"{m.file}:{m.line}: allow({m.code}) — {m.reason}")
        for d in malformed:
            rows.append(d.format())
    for table, label in ((config.D103_EXEMPT, "D103 file exemption"),
                         (config.A1_EXEMPT_FILES, "A1 file exemption"),
                         (config.A1_EXEMPT_CALLEES, "A1 callee exemption"),
                         (config.L104_EXEMPT, "L104 file exemption")):
        for name, reason in sorted(table.items()):
            rows.append(f"{name}: {label} — {reason}")
    print("\n".join(rows) if rows else "no suppressions")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    if args.rules:
        families = {f.strip().upper() for f in args.rules.split(",")}
        unknown = families - {"D1", "A1", "L1", "E1"}
        if unknown:
            print(f"aladdin-analyze: unknown rule family: "
                  f"{', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
    else:
        families = None

    try:
        paths = _discover_files(args)
    except compile_db.CompileDbError as err:
        print(f"aladdin-analyze: {err}", file=sys.stderr)
        return 2

    models, backend = _build_models(paths, args.backend, args)
    if args.list_allows:
        return _list_allows(models)

    ctx = rules.RuleContext(files=models, fixture_mode=args.fixture)
    diags = rules.run_all(ctx, families)

    markers: list[AllowMarker] = []
    malformed: list[Diagnostic] = []
    for model in models:
        file_markers, file_malformed = collect_allows(model.path,
                                                      model.comments)
        markers.extend(file_markers)
        malformed.extend(file_malformed)
    if families is not None:
        # A marker for a family that did not run cannot be judged stale.
        letters = {f[0] for f in families}
        markers = [m for m in markers if m.code[0] in letters]
    diags = apply_allows(diags, markers) + malformed

    report = render_text(diags, show_suppressed=args.show_suppressed)
    active = [d for d in diags if not d.suppressed]
    print(report, file=sys.stderr if active else sys.stdout)
    if args.json:
        Path(args.json).write_text(render_json(diags, backend, len(models))
                                   + "\n")
    return 1 if active else 0

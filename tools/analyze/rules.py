"""The D1/A1/L1/E1 rule implementations.

Each rule consumes the backend-neutral SourceFile model (source_model.py)
and emits Diagnostics with closed codes (diagnostics.py). Scoping policy
lives in config.py; `fixture_mode` widens every scope to exactly the files
given so the fixture corpus can exercise a rule without living under src/.
"""

from __future__ import annotations

import dataclasses
import re

from . import config
from .diagnostics import Diagnostic
from .source_model import (FunctionDef, SourceFile, Token, call_names,
                           iter_switches)

UNORDERED_TYPES = frozenset({
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "flat_hash_map", "flat_hash_set",
})
ORDERED_ASSOC_TYPES = frozenset({"map", "set", "multimap", "multiset"})
RAND_CALLS = frozenset({"rand", "srand", "rand_r", "drand48", "lrand48"})
CLOCK_TYPES = frozenset({
    "system_clock", "steady_clock", "high_resolution_clock",
})
CLOCK_CALLS = frozenset({"gettimeofday", "clock_gettime", "timespec_get"})

ALLOC_CALLS = frozenset({"make_unique", "make_shared"})
GROWTH_METHODS = frozenset({"assign", "resize", "reserve"})
OWNING_CONTAINERS = frozenset({
    "vector", "deque", "list", "string", "basic_string", "ostringstream",
    "stringstream", "priority_queue", "queue", "stack",
}) | UNORDERED_TYPES | ORDERED_ASSOC_TYPES

RAW_LOCK_TYPES = frozenset({
    "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "lock_guard", "unique_lock", "scoped_lock",
    "shared_lock",
})

_MACRO_NAME = re.compile(r"^[A-Z][A-Z0-9_]*$")


@dataclasses.dataclass
class RuleContext:
    files: list[SourceFile]
    fixture_mode: bool = False

    def d1_files(self) -> list[SourceFile]:
        if self.fixture_mode:
            return self.files
        return [f for f in self.files
                if config.in_scope(f.path, config.D1_SCOPE)]

    def l1_surface(self) -> list[SourceFile]:
        if self.fixture_mode:
            return self.files
        return [f for f in self.files if f.path in config.L1_SURFACE]


def run_all(ctx: RuleContext,
            families: set[str] | None = None) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    if families is None or "D1" in families:
        diags += rule_d101_unordered_iteration(ctx)
        diags += rule_d102_pointer_keyed_order(ctx)
        diags += rule_d103_nondeterministic_sources(ctx)
    if families is None or "A1" in families:
        diags += rule_a1_hot_path_allocation(ctx)
        diags += rule_a104_nested_vector(ctx)
    if families is None or "L1" in families:
        diags += rule_l1_locking(ctx)
    if families is None or "E1" in families:
        diags += rule_e1_exhaustive_switches(ctx)
    return diags


# --------------------------------------------------------------------------
# D1 — determinism
# --------------------------------------------------------------------------


def _unordered_member_names(files: list[SourceFile]) -> set[str]:
    """Names of class members whose declared type is an unordered container,
    across every scanned file (members are declared in headers but iterated
    in sources, so this registry is global)."""
    names: set[str] = set()
    for f in files:
        for c in f.classes:
            for field in c.fields:
                if any(t in UNORDERED_TYPES
                       for t in field.type_text.split()):
                    names.add(field.name)
    return names


def _local_unordered_names(body: list[Token]) -> set[str]:
    """Variables declared `std::unordered_*<...> name` inside a body."""
    names: set[str] = set()
    i = 0
    while i < len(body):
        tok = body[i]
        if tok.kind == "id" and tok.text in UNORDERED_TYPES:
            j = i + 1
            if j < len(body) and body[j].text == "<":
                depth = 0
                while j < len(body):
                    if body[j].text == "<":
                        depth += 1
                    elif body[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                if j + 1 < len(body) and body[j + 1].kind == "id":
                    names.add(body[j + 1].text)
                i = j
        i += 1
    return names


def _range_for_exprs(body: list[Token]):
    """Yields (colon_token, range_expr_tokens) for each range-for in body."""
    for i, tok in enumerate(body):
        if tok.kind != "id" or tok.text != "for":
            continue
        if i + 1 >= len(body) or body[i + 1].text != "(":
            continue
        depth = 0
        colon = None
        has_semicolon = False
        j = i + 1
        while j < len(body):
            t = body[j].text
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
                if depth == 0:
                    break
            elif depth == 1:
                if t == ";":
                    has_semicolon = True
                elif t == ":" and colon is None:
                    colon = j
            j += 1
        if colon is not None and not has_semicolon:
            yield body[colon], body[colon + 1:j]


def rule_d101_unordered_iteration(ctx: RuleContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    members = _unordered_member_names(ctx.d1_files())
    for f in ctx.d1_files():
        # Namespace-scope globals live outside every function body, so the
        # per-function local scan never sees them; scan the file's top-level
        # tokens (everything not inside a body) for their declarations.
        body_ids = {id(t) for fn in f.functions for t in fn.body}
        file_scope = _local_unordered_names(
            [t for t in f.tokens if id(t) not in body_ids])
        for fn in f.functions:
            candidates = (members | file_scope
                          | _local_unordered_names(fn.body))
            if not candidates:
                continue
            for colon_tok, expr in _range_for_exprs(fn.body):
                hit = next((t for t in expr if t.kind == "id"
                            and t.text in candidates), None)
                if hit is not None:
                    diags.append(Diagnostic(
                        "D101", f.path, hit.line,
                        f"range-for over unordered container '{hit.text}' "
                        f"in '{fn.qualified}' — iteration order is hash "
                        "layout; use an ordered container or sort first"))
            for i, tok in enumerate(fn.body):
                if tok.text in (".", "->") and i + 2 < len(fn.body):
                    recv = fn.body[i - 1] if i else None
                    meth = fn.body[i + 1]
                    if (recv is not None and recv.kind == "id"
                            and recv.text in candidates
                            and meth.text in ("begin", "cbegin", "rbegin")
                            and fn.body[i + 2].text == "("):
                        diags.append(Diagnostic(
                            "D101", f.path, recv.line,
                            f"iterator over unordered container "
                            f"'{recv.text}' in '{fn.qualified}' — "
                            "iteration order is hash layout"))
    return diags


def rule_d102_pointer_keyed_order(ctx: RuleContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for f in ctx.d1_files():
        toks = f.tokens
        for i, tok in enumerate(toks):
            if tok.kind != "id" or tok.text not in ORDERED_ASSOC_TYPES:
                continue
            if not (i >= 2 and toks[i - 1].text == "::"
                    and toks[i - 2].text == "std"):
                continue
            if i + 1 >= len(toks) or toks[i + 1].text != "<":
                continue
            depth = 0
            star = None
            j = i + 1
            while j < len(toks):
                t = toks[j].text
                if t == "<":
                    depth += 1
                elif t == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif t == "," and depth == 1:
                    break  # only the *key* type decides iteration order
                elif t == "*":
                    star = toks[j]
                j += 1
            if star is not None:
                diags.append(Diagnostic(
                    "D102", f.path, tok.line,
                    f"std::{tok.text} keyed by a pointer — iteration order "
                    "is allocation layout; key by a stable id instead"))
    return diags


def rule_d103_nondeterministic_sources(ctx: RuleContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for f in ctx.d1_files():
        if not ctx.fixture_mode and f.path in config.D103_EXEMPT:
            continue
        toks = f.tokens
        for i, tok in enumerate(toks):
            if tok.kind != "id":
                continue
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if tok.text in RAND_CALLS and nxt == "(":
                diags.append(Diagnostic(
                    "D103", f.path, tok.line,
                    f"'{tok.text}()' in decision-path code — randomness "
                    "must flow through common/rng.h with explicit seeds"))
            elif tok.text == "random_device":
                diags.append(Diagnostic(
                    "D103", f.path, tok.line,
                    "std::random_device in decision-path code — "
                    "non-deterministic seed source; use an explicit seed"))
            elif tok.text in CLOCK_TYPES:
                diags.append(Diagnostic(
                    "D103", f.path, tok.line,
                    f"raw {tok.text} read in decision-path code — clocks "
                    "feed stats only, via common/timer.h (WallTimer)"))
            elif tok.text in CLOCK_CALLS and nxt == "(":
                diags.append(Diagnostic(
                    "D103", f.path, tok.line,
                    f"'{tok.text}()' in decision-path code — clocks feed "
                    "stats only, via common/timer.h"))
            elif (tok.text == "time" and nxt == "("
                  and i + 2 < len(toks)
                  and toks[i + 2].text in ("nullptr", "NULL", "0")):
                diags.append(Diagnostic(
                    "D103", f.path, tok.line,
                    "time(nullptr) in decision-path code — wall-clock "
                    "seeding breaks replayability"))
    return diags


# --------------------------------------------------------------------------
# A1 — hot-path allocation
# --------------------------------------------------------------------------


def _class_of(fn: FunctionDef) -> str:
    parts = fn.qualified.split("::")
    return parts[-2] if len(parts) >= 2 else ""


def _reachable_from_hot(
        ctx: RuleContext) -> dict[str, tuple[FunctionDef, list[str]]]:
    """BFS over the name-matched call graph from every ALADDIN_HOT root.

    Returns qualified-name -> (function, call chain from the root). Name
    matching is conservative (a callee name reaches every same-named
    definition); exemptions in config.py prune the sanctioned scratch types
    and runtime-gated cold paths.
    """
    defs_by_name: dict[str, list[FunctionDef]] = {}
    all_fns: list[FunctionDef] = []
    for f in ctx.files:
        for fn in f.functions:
            defs_by_name.setdefault(fn.name, []).append(fn)
            all_fns.append(fn)

    def exempt(fn: FunctionDef) -> bool:
        if ctx.fixture_mode:
            return _class_of(fn) in config.A1_EXEMPT_CLASSES
        if config.file_exempt(fn.file, config.A1_EXEMPT_FILES):
            return True
        if _class_of(fn) in config.A1_EXEMPT_CLASSES:
            return True
        return any(key in fn.qualified for key in config.A1_EXEMPT_CALLEES)

    reached: dict[str, tuple[FunctionDef, list[str]]] = {}
    frontier: list[tuple[FunctionDef, list[str]]] = []
    for fn in all_fns:
        if fn.is_hot and not exempt(fn):
            frontier.append((fn, [fn.name]))
    while frontier:
        fn, chain = frontier.pop()
        if fn.qualified in reached:
            continue
        reached[fn.qualified] = (fn, chain)
        for callee, _tok in call_names(fn.body):
            if _MACRO_NAME.match(callee):
                continue  # ALADDIN_*/gtest macros are not calls to follow
            for target in defs_by_name.get(callee, ()):
                if target.qualified in reached or exempt(target):
                    continue
                frontier.append((target, chain + [target.name]))
    return reached


_SCRATCH_ROOT_NAMES = frozenset({"ws", "ws_", "workspace", "workspace_"})


def _scratch_locals(body: list[Token]) -> set[str]:
    """Locals declared with a sanctioned scratch type (ArenaVector<T> v...)
    — growth on them is arena-backed, not heap growth."""
    names: set[str] = set()
    for i, tok in enumerate(body):
        if tok.kind == "id" and tok.text in config.A1_EXEMPT_CLASSES:
            j = i + 1
            if j < len(body) and body[j].text == "<":
                depth = 0
                while j < len(body):
                    if body[j].text == "<":
                        depth += 1
                    elif body[j].text == ">":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                j += 1
            if j < len(body) and body[j].kind == "id":
                names.add(body[j].text)
    return names


def _receiver_root(body: list[Token], dot_idx: int) -> str:
    """For `a.b.c.assign(` at the `.` before the method, the chain root `a`
    (walking back over id/./->/() segments)."""
    i = dot_idx - 1
    root = ""
    while i >= 0:
        t = body[i]
        if t.kind == "id":
            root = t.text
            if i >= 1 and body[i - 1].text in (".", "->"):
                i -= 2
                continue
        break
    return root


def rule_a1_hot_path_allocation(ctx: RuleContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    reached = _reachable_from_hot(ctx)
    for fn, chain in reached.values():
        via = " -> ".join(chain)
        body = fn.body
        scratch = _scratch_locals(body) | _SCRATCH_ROOT_NAMES
        for i, tok in enumerate(body):
            # All forms of `new` count, placement included — placement new
            # is only sanctioned inside the exempt Arena types.
            if tok.text == "new":
                diags.append(Diagnostic(
                    "A101", fn.file, tok.line,
                    f"operator new in '{fn.qualified}' "
                    f"(hot call chain: {via})"))
            elif tok.kind == "id" and tok.text in ALLOC_CALLS:
                diags.append(Diagnostic(
                    "A101", fn.file, tok.line,
                    f"std::{tok.text} in '{fn.qualified}' "
                    f"(hot call chain: {via})"))
            elif (tok.kind == "id" and tok.text in OWNING_CONTAINERS
                  and i >= 2 and body[i - 1].text == "::"
                  and body[i - 2].text == "std"):
                if _is_owning_construction(body, i):
                    diags.append(Diagnostic(
                        "A102", fn.file, tok.line,
                        f"std::{tok.text} constructed per call in "
                        f"'{fn.qualified}' (hot call chain: {via}) — use "
                        "flow::Workspace / Arena scratch"))
            elif (tok.text in (".", "->") and i + 2 < len(body)
                  and body[i + 1].kind == "id"
                  and body[i + 1].text in GROWTH_METHODS
                  and body[i + 2].text == "("
                  and _receiver_root(body, i) not in scratch):
                diags.append(Diagnostic(
                    "A103", fn.file, body[i + 1].line,
                    f".{body[i + 1].text}() in '{fn.qualified}' "
                    f"(hot call chain: {via}) — growth must be amortised "
                    "against a pinned high-water mark"))
    return diags


def _is_owning_construction(body: list[Token], i: int) -> bool:
    """True when body[i] (a container type name) is a by-value local /
    temporary construction, not a reference, pointer, or nested type use."""
    j = i + 1
    if j < len(body) and body[j].text == "<":
        depth = 0
        while j < len(body):
            if body[j].text == "<":
                depth += 1
            elif body[j].text == ">":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        j += 1
    after = body[j].text if j < len(body) else ""
    after2 = body[j + 1].text if j + 1 < len(body) else ""
    if after in ("&", "*", "::"):
        return False  # reference/pointer/iterator type, no allocation
    if after in ("(", "{"):
        return True  # temporary: std::vector<int>{...}
    if j < len(body) and body[j].kind == "id":
        return after2 in (";", "(", "{", "=", ",", ")")
    return False


def rule_a104_nested_vector(ctx: RuleContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for f in ctx.files:
        if not ctx.fixture_mode and not config.matches(f.path,
                                                       config.A104_GLOB):
            continue
        toks = f.tokens
        for i, tok in enumerate(toks):
            # std :: vector < std :: vector <
            if (tok.text == "vector" and i + 4 < len(toks)
                    and toks[i + 1].text == "<"
                    and toks[i + 2].text == "std"
                    and toks[i + 3].text == "::"
                    and toks[i + 4].text == "vector"):
                diags.append(Diagnostic(
                    "A104", f.path, tok.line,
                    "nested std::vector adjacency in flow/; use the frozen "
                    "CSR (flow/graph.h) or flat arrays"))
    return diags


# --------------------------------------------------------------------------
# L1 — locking
# --------------------------------------------------------------------------


def rule_l1_locking(ctx: RuleContext) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for f in ctx.l1_surface():
        for c in f.classes:
            mutexes = [fd for fd in c.fields if fd.is_mutex]
            if not mutexes:
                continue
            guarded_refs = {fd.guarded_by for fd in c.fields
                            if fd.guarded_by}
            mutex_names = {m.name for m in mutexes}
            for m in mutexes:
                if not any(m.name in ref for ref in guarded_refs):
                    diags.append(Diagnostic(
                        "L101", f.path, m.line,
                        f"mutex '{c.name}::{m.name}' guards no field — "
                        "annotate the data it protects with "
                        "ALADDIN_GUARDED_BY"))
            for fd in c.fields:
                if fd.guarded_by:
                    ref = fd.guarded_by.split(".")[0].split("->")[0]
                    if ref not in mutex_names and "::" not in fd.guarded_by:
                        diags.append(Diagnostic(
                            "L102", f.path, fd.line,
                            f"ALADDIN_GUARDED_BY({fd.guarded_by}) on "
                            f"'{c.name}::{fd.name}' names no member mutex"))
                elif not (fd.is_const or fd.is_atomic or fd.is_mutex
                          or fd.is_condvar):
                    diags.append(Diagnostic(
                        "L103", f.path, fd.line,
                        f"field '{c.name}::{fd.name}' in a mutex-holding "
                        "class has no ALADDIN_GUARDED_BY — annotate it or "
                        "justify with analyze:allow(L103)"))
    # L104: raw standard mutexes/locks anywhere in src (they are invisible
    # to -Wthread-safety; common/mutex.h wraps them once, with annotations).
    for f in ctx.files:
        if not ctx.fixture_mode:
            if not config.in_scope(f.path, config.D1_SCOPE):
                continue
            if f.path in config.L104_EXEMPT:
                continue
        toks = f.tokens
        for i, tok in enumerate(toks):
            if (tok.kind == "id" and tok.text in RAW_LOCK_TYPES
                    and i >= 2 and toks[i - 1].text == "::"
                    and toks[i - 2].text == "std"):
                diags.append(Diagnostic(
                    "L104", f.path, tok.line,
                    f"raw std::{tok.text} — use aladdin::Mutex / MutexLock "
                    "/ CvLock (common/mutex.h) so -Wthread-safety sees it"))
    return diags


# --------------------------------------------------------------------------
# E1 — closed-enum exhaustiveness
# --------------------------------------------------------------------------


def _switch_labels(body: list[Token]):
    """(enum_name, enumerator, token) per case label plus ('', 'default',
    token) entries, skipping nested switch statements."""
    i = 0
    n = len(body)
    while i < n:
        tok = body[i]
        if tok.kind == "id" and tok.text == "switch":
            # Skip the nested switch wholesale (its labels are its own).
            j = i + 1
            if j < n and body[j].text == "(":
                depth = 0
                while j < n:
                    if body[j].text == "(":
                        depth += 1
                    elif body[j].text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                j += 1
                if j < n and body[j].text == "{":
                    depth = 0
                    while j < n:
                        if body[j].text == "{":
                            depth += 1
                        elif body[j].text == "}":
                            depth -= 1
                            if depth == 0:
                                break
                        j += 1
            i = j + 1
            continue
        if tok.kind == "id" and tok.text == "default" and i + 1 < n \
                and body[i + 1].text == ":":
            yield "", "default", tok
        elif tok.kind == "id" and tok.text == "case":
            path: list[str] = []
            j = i + 1
            while j < n and body[j].text != ":":
                if body[j].kind == "id":
                    path.append(body[j].text)
                elif body[j].text != "::":
                    break  # numeric / expression label: not an enum path
                j += 1
            if path:
                enum_name = path[-2] if len(path) >= 2 else ""
                yield enum_name, path[-1], tok
            i = j
        i += 1


def rule_e1_exhaustive_switches(ctx: RuleContext) -> list[Diagnostic]:
    closed: dict[str, list[str]] = {}
    for f in ctx.files:
        if not ctx.fixture_mode and not config.in_scope(f.path,
                                                        config.E1_SCOPE):
            continue
        for e in f.enums:
            if e.closed:
                closed[e.name] = [x for x in e.enumerators
                                  if x not in config.E1_SENTINELS]
    diags: list[Diagnostic] = []
    if not closed:
        return diags
    scope = ctx.files if ctx.fixture_mode else [
        f for f in ctx.files if config.in_scope(f.path, config.E1_SCOPE)]
    for f in scope:
        for fn in f.functions:
            for sw_tok, sw_body in iter_switches(fn.body):
                labels = list(_switch_labels(sw_body))
                enum_names = {name for name, _, _ in labels if name}
                target = next((n for n in enum_names if n in closed), None)
                if target is None:
                    continue
                seen = {lab for name, lab, _ in labels if name == target}
                has_default = any(lab == "default" for _, lab, _ in labels)
                missing = [x for x in closed[target] if x not in seen]
                if missing:
                    diags.append(Diagnostic(
                        "E101", f.path, sw_tok.line,
                        f"switch over closed enum '{target}' in "
                        f"'{fn.qualified}' misses: {', '.join(missing)}"))
                if has_default:
                    diags.append(Diagnostic(
                        "E102", f.path, sw_tok.line,
                        f"default: in switch over closed enum '{target}' "
                        f"in '{fn.qualified}' — closed enums enumerate "
                        "every case so new enumerators fail loudly"))
    return diags

// Extension benches beyond the paper's evaluation:
//
//   1. Heterogeneous cluster (§VII future work: "extend the flow-based
//      model to support heterogeneous workloads") — all four schedulers on
//      the mixed-SKU cluster; Aladdin's capacity function is dimension- and
//      machine-size-agnostic, so the zero-violation property must carry
//      over unchanged.
//   2. Resource-dimension count c (§IV.D: "the effect of c on time
//      complexity is linear and much smaller than E") — the same workload
//      scheduled CPU-only (c = 1) and CPU+memory (c = 2).
//
// Both print shape expectations inline like the figure benches.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/firmament/scheduler.h"
#include "baselines/gokube/scheduler.h"
#include "baselines/medea/scheduler.h"
#include "common/flags.h"
#include "obs/cli.h"
#include "core/scheduler.h"
#include "sim/experiment.h"
#include "sim/report.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  auto& scale = flags.Double("scale", 0.04, "workload scale (1.0 = paper)");
  auto& seed = flags.Int64("seed", 42, "trace seed");
  aladdin::obs::ObsCli obs_cli(flags);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  // --- 1. Heterogeneous cluster. ------------------------------------------
  sim::PrintExperimentHeader(
      "Extension 1", "heterogeneous machines (§VII future work): 50% 32c / "
                     "30% 64c / 20% 16c SKU mix");
  {
    const trace::Workload workload =
        sim::MakeBenchWorkload(scale, static_cast<std::uint64_t>(seed));
    const cluster::Topology topo =
        trace::MakeHeterogeneousCluster(sim::BenchMachineCount(scale));
    std::printf("capacity: %lld cores over %zu machines (homogeneous "
                "equivalent: %lld)\n",
                static_cast<long long>(topo.TotalCapacity().cpu_millis() /
                                       1000),
                topo.machine_count(),
                static_cast<long long>(topo.machine_count()) * 32);

    std::vector<sim::RunMetrics> rows;
    core::AladdinScheduler aladdin;
    rows.push_back(sim::RunExperimentOn(aladdin, workload, topo,
                                        trace::ArrivalOrder::kRandom, 1));
    baselines::FirmamentOptions fo;
    fo.reschd = 8;
    baselines::FirmamentScheduler firmament(fo);
    rows.push_back(sim::RunExperimentOn(firmament, workload, topo,
                                        trace::ArrivalOrder::kRandom, 1));
    baselines::MedeaOptions mo;
    mo.weights = {1, 1, 0};
    baselines::MedeaScheduler medea(mo);
    rows.push_back(sim::RunExperimentOn(medea, workload, topo,
                                        trace::ArrivalOrder::kRandom, 1));
    baselines::GoKubeScheduler gokube;
    rows.push_back(sim::RunExperimentOn(gokube, workload, topo,
                                        trace::ArrivalOrder::kRandom, 1));
    sim::PrintRunTable(rows);
    std::printf("expectation: Aladdin keeps zero violations on mixed SKUs; "
                "the capacity function never assumed machine homogeneity.\n");
  }

  // --- 2. Dimension count c. ------------------------------------------------
  sim::PrintExperimentHeader(
      "Extension 2",
      "resource-dimension count (§IV.D): c = 1 (CPU) vs c = 2 (CPU+memory)");
  {
    Table table({"dimensions", "unplaced", "violations%", "machines",
                 "runtime ms", "explored paths"});
    for (const bool cpu_only : {true, false}) {
      trace::AlibabaTraceOptions options;
      options.scale = scale;
      options.seed = static_cast<std::uint64_t>(seed);
      options.cpu_only = cpu_only;
      const trace::Workload workload = trace::GenerateAlibabaLike(options);
      sim::ExperimentConfig config;
      config.machines = sim::BenchMachineCount(scale);
      config.order = trace::ArrivalOrder::kRandom;
      core::AladdinScheduler scheduler;
      const sim::RunMetrics m =
          sim::RunExperiment(scheduler, workload, config);
      table.Cell(cpu_only ? "c = 1 (CPU only)" : "c = 2 (CPU + memory)")
          .Cell(static_cast<std::int64_t>(m.audit.unplaced))
          .Cell(m.audit.ViolationPercent(), 2)
          .Cell(static_cast<std::int64_t>(m.used_machines))
          .Cell(m.wall_seconds * 1e3, 1)
          .Cell(m.outcome.explored_paths)
          .EndRow();
    }
    table.Print();
    std::printf("expectation: adding the memory dimension changes runtime "
                "by a small constant factor (the paper's linear-in-c "
                "argument), not the placement quality.\n");
  }
  if (!obs_cli.Finish()) return 1;
  return 0;
}

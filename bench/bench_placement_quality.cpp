// Reproduces Fig. 9 (placement quality) and Table I.
//
// Paper setup (§V.B): replay the trace onto a 10,000-machine cluster and
// count undeployed containers ("constraint violations %") for every
// scheduler/parameter combination:
//   Go-Kube; Firmament-{TRIVIAL,QUINCY,OCTOPUS} with reschd(i), i=1,2,4,8;
//   Medea with weights (1,1,1), (1,1,0.5), (1,1,0), (1,0.5,0.5);
//   Aladdin with weight bases 16, 32, 64, 128.
// Fig. 9(e) is the anti-affinity share of those violations.
//
// Paper shape targets: Go-Kube 21.2 % (constant); Firmament-TRIVIAL
// 34.7→4.3 % and -QUINCY 25.1→3.5 % falling as i grows; -OCTOPUS ~6.5–10.7 %;
// Medea 5.2 % (c=0) to 12.9 % (c=1); Aladdin 0 % everywhere; anti-affinity
// share ≥ 65 % for every non-Aladdin scheduler.
//
// Defaults are scaled down (--scale) so the whole sweep runs on one core in
// well under a minute; pass --scale=1 for the paper's full 10k × 100k size.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/firmament/scheduler.h"
#include "baselines/gokube/scheduler.h"
#include "baselines/medea/scheduler.h"
#include "common/flags.h"
#include "obs/cli.h"
#include "core/scheduler.h"
#include "sim/experiment.h"
#include "sim/report.h"

using namespace aladdin;

namespace {

void PrintTableOne() {
  sim::PrintExperimentHeader("Table I", "state-of-the-art schedulers");
  Table table({"name", "description"});
  table.AddRow({"Firmament-TRIVIAL",
                "containers always scheduled if resources are idle"});
  table.AddRow({"Firmament-QUINCY",
                "original Quincy cost model, lower cost priority"});
  table.AddRow({"Firmament-OCTOPUS",
                "simple load balancing based on container counts"});
  table.AddRow({"Medea",
                "balance resource efficiency and constraint violations"});
  table.AddRow({"Go-Kube", "scoring machines and choose the best one"});
  table.AddRow({"Aladdin", "optimized maximum flow management (this paper)"});
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  auto& scale = flags.Double("scale", 0.04, "workload scale (1.0 = paper)");
  auto& seed = flags.Int64("seed", 42, "trace seed");
  auto& ls_budget =
      flags.Double("medea_ls_seconds", 0.5, "Medea local-search budget");
  auto& csv = flags.String("csv", "", "append machine-readable rows here");
  aladdin::obs::ObsCli obs_cli(flags);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  PrintTableOne();

  const trace::Workload workload = sim::MakeBenchWorkload(
      scale, static_cast<std::uint64_t>(seed));
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(scale);
  config.order = trace::ArrivalOrder::kRandom;

  std::printf("\nworkload: %zu applications, %zu containers, %zu machines\n",
              workload.application_count(), workload.container_count(),
              config.machines);

  struct Panel {
    int reschd;
    baselines::MedeaWeights medea;
    std::int64_t aladdin_base;
    const char* paper;
  };
  const Panel panels[] = {
      {1, {1, 1, 1.0}, 16,
       "Fig.9a: TRIVIAL 34.7 / QUINCY 25.1 / MEDEA 12.9 / Aladdin 0"},
      {2, {1, 1, 0.5}, 32,
       "Fig.9b: TRIVIAL 28.2 / QUINCY 16.7 / OCTOPUS 7.2 / MEDEA 5.2"},
      {4, {1, 1, 0.0}, 64,
       "Fig.9c: TRIVIAL 15.6 / QUINCY 3.5 / OCTOPUS 6.5 / MEDEA 5.2"},
      {8, {1, 0.5, 0.5}, 128,
       "Fig.9d: TRIVIAL 4.3 / QUINCY 3.5 / OCTOPUS 10.7 / MEDEA 5.8"},
  };

  // Go-Kube has no sweep parameter; run once and reuse (the paper shows the
  // same 21.2 % in every panel).
  baselines::GoKubeScheduler gokube;
  const sim::RunMetrics gokube_metrics =
      sim::RunExperiment(gokube, workload, config);

  std::vector<sim::RunMetrics> all;
  for (const Panel& panel : panels) {
    sim::PrintExperimentHeader(
        "Fig. 9", std::string("panel with reschd(") +
                      std::to_string(panel.reschd) + "), Medea" +
                      panel.medea.ToString() + ", Aladdin(" +
                      std::to_string(panel.aladdin_base) + ")");
    std::printf("paper: %s\n", panel.paper);

    std::vector<sim::RunMetrics> rows;
    rows.push_back(gokube_metrics);

    for (auto model : {baselines::FirmamentCostModel::kTrivial,
                       baselines::FirmamentCostModel::kQuincy,
                       baselines::FirmamentCostModel::kOctopus}) {
      baselines::FirmamentOptions fo;
      fo.cost_model = model;
      fo.reschd = panel.reschd;
      baselines::FirmamentScheduler firmament(fo);
      rows.push_back(sim::RunExperiment(firmament, workload, config));
    }
    {
      baselines::MedeaOptions mo;
      mo.weights = panel.medea;
      mo.local_search.time_budget_seconds = ls_budget;
      baselines::MedeaScheduler medea(mo);
      rows.push_back(sim::RunExperiment(medea, workload, config));
    }
    {
      core::AladdinOptions ao;
      ao.weight_base = panel.aladdin_base;
      core::AladdinScheduler aladdin(ao);
      rows.push_back(sim::RunExperiment(aladdin, workload, config));
    }
    sim::PrintRunTable(rows);
    if (!csv.empty()) {
      sim::AppendMetricsCsv(csv, "fig9",
                            "reschd" + std::to_string(panel.reschd), rows);
    }
    all.insert(all.end(), rows.begin(), rows.end());
  }

  sim::PrintExperimentHeader(
      "Fig. 9(e)", "anti-affinity share of violations (paper: >= 65% for all "
                   "non-Aladdin schedulers)");
  Table share({"scheduler", "violations%", "aa-share%"});
  for (const auto& m : all) {
    if (m.audit.TotalViolations() == 0) continue;  // Aladdin rows
    share.Cell(m.scheduler)
        .Cell(m.audit.ViolationPercent(), 1)
        .Cell(m.audit.AntiAffinityShare(), 1)
        .EndRow();
  }
  share.Print();
  if (!obs_cli.Finish()) return 1;
  return 0;
}

// Reproduces Fig. 10 (machines used per arrival order) and Fig. 11
// (per-machine utilisation ranges), §V.C.
//
// Paper setup: Go-Kube, Firmament-QUINCY(8), Medea(1,1,0) and Aladdin(16)
// — each with its optimal parameters from §V.B — schedule the full trace
// under four arrival orders (CHP, CLP, CLA, CSA). Machines are provisioned
// generously (the paper reports Go-Kube using 14,211 > 10,000) so "machines
// used" measures each scheduler's true appetite.
//
// Paper shape targets: Aladdin lowest and constant (9,242); Firmament-QUINCY
// constant (10,477); Medea near-constant (~10,262); Go-Kube highest and
// order-sensitive (12,157–14,211 = up to 1.54× Aladdin). Fig. 11: flow-based
// schedulers show tight utilisation ranges; Go-Kube wide.
#include <cstdio>
#include <vector>

#include "baselines/firmament/scheduler.h"
#include "baselines/gokube/scheduler.h"
#include "baselines/medea/scheduler.h"
#include "common/flags.h"
#include "obs/cli.h"
#include "core/scheduler.h"
#include "sim/experiment.h"
#include "sim/report.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  auto& scale = flags.Double("scale", 0.04, "workload scale (1.0 = paper)");
  auto& seed = flags.Int64("seed", 42, "trace seed");
  auto& headroom = flags.Double(
      "headroom", 1.6, "machine pool size as a multiple of the paper ratio");
  auto& csv = flags.String("csv", "", "append machine-readable rows here");
  aladdin::obs::ObsCli obs_cli(flags);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  const trace::Workload workload =
      sim::MakeBenchWorkload(scale, static_cast<std::uint64_t>(seed));
  sim::ExperimentConfig config;
  config.machines = static_cast<std::size_t>(
      static_cast<double>(sim::BenchMachineCount(scale)) * headroom);

  std::printf("workload: %zu containers; machine pool: %zu\n",
              workload.container_count(), config.machines);

  for (trace::ArrivalOrder order : trace::kCharacteristicOrders) {
    config.order = order;
    sim::PrintExperimentHeader(
        "Fig. 10 / Fig. 11", std::string("arrival order: ") +
                                 trace::ArrivalOrderName(order));

    std::vector<sim::RunMetrics> rows;
    {
      baselines::GoKubeScheduler gokube;
      rows.push_back(sim::RunExperiment(gokube, workload, config));
    }
    {
      baselines::FirmamentOptions fo;
      fo.cost_model = baselines::FirmamentCostModel::kQuincy;
      fo.reschd = 8;
      baselines::FirmamentScheduler firmament(fo);
      rows.push_back(sim::RunExperiment(firmament, workload, config));
    }
    {
      baselines::MedeaOptions mo;
      mo.weights = {1.0, 1.0, 0.0};
      baselines::MedeaScheduler medea(mo);
      rows.push_back(sim::RunExperiment(medea, workload, config));
    }
    {
      core::AladdinScheduler aladdin;
      rows.push_back(sim::RunExperiment(aladdin, workload, config));
    }

    // Fig. 10: machines used (paper: Go-Kube 12,157–14,211; QUINCY 10,477;
    // Medea ~10,262; Aladdin 9,242 — all at scale 1.0).
    sim::PrintEfficiencyTable(rows);
    if (!csv.empty()) {
      sim::AppendMetricsCsv(csv, "fig10", trace::ArrivalOrderName(order),
                            rows);
    }

    // Fig. 11: utilisation ranges across used machines.
    Table util({"scheduler", "min util%", "avg util%", "max util%",
                "placed", "unplaced"});
    for (const auto& m : rows) {
      util.Cell(m.scheduler)
          .Cell(m.util.min_share * 100.0, 1)
          .Cell(m.util.avg_share * 100.0, 1)
          .Cell(m.util.max_share * 100.0, 1)
          .Cell(static_cast<std::int64_t>(m.audit.placed))
          .Cell(static_cast<std::int64_t>(m.audit.unplaced))
          .EndRow();
    }
    util.Print();
  }
  if (!obs_cli.Finish()) return 1;
  return 0;
}

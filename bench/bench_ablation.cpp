// Ablation bench for the design choices DESIGN.md calls out (not a paper
// figure, but §IV.A's claims made measurable):
//   1. IL / DL search-space reduction — explored paths, prunes and wall
//      time for the three policies (the mechanism behind Fig. 12's 50 %);
//   2. the Eq. 4–5 weight rule — weight bases vs derived minimal weights,
//      verifying Eq. 5 satisfaction and identical outcomes;
//   3. repair and compaction — what migration/preemption and the
//      compaction pass each contribute to placement quality and machines.
#include <cstdio>

#include "common/flags.h"
#include "obs/cli.h"
#include "common/table.h"
#include "core/scheduler.h"
#include "core/relaxation.h"
#include "core/weights.h"
#include "sim/experiment.h"
#include "trace/alibaba_gen.h"
#include "sim/report.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  auto& scale = flags.Double("scale", 0.04, "workload scale (1.0 = paper)");
  auto& seed = flags.Int64("seed", 42, "trace seed");
  aladdin::obs::ObsCli obs_cli(flags);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  const trace::Workload workload =
      sim::MakeBenchWorkload(scale, static_cast<std::uint64_t>(seed));
  sim::ExperimentConfig config;
  config.machines = sim::BenchMachineCount(scale);
  config.order = trace::ArrivalOrder::kRandom;

  // --- 1. IL / DL search-space reduction. --------------------------------
  sim::PrintExperimentHeader("Ablation 1",
                             "IL/DL search-space reduction (§IV.A)");
  Table search({"policy", "explored paths", "IL prunes", "DL stops",
                "runtime ms", "unplaced", "machines"});
  struct Policy {
    const char* name;
    bool il, dl;
  };
  for (const Policy& p : {Policy{"Aladdin (plain)", false, false},
                          Policy{"Aladdin+IL", true, false},
                          Policy{"Aladdin+IL+DL", true, true}}) {
    core::AladdinOptions options;
    options.enable_il = p.il;
    options.enable_dl = p.dl;
    core::AladdinScheduler scheduler(options);
    const sim::RunMetrics m = sim::RunExperiment(scheduler, workload, config);
    search.Cell(p.name)
        .Cell(m.outcome.explored_paths)
        .Cell(m.outcome.il_prunes)
        .Cell(m.outcome.dl_stops)
        .Cell(m.wall_seconds * 1e3, 1)
        .Cell(static_cast<std::int64_t>(m.audit.unplaced))
        .Cell(static_cast<std::int64_t>(m.used_machines))
        .EndRow();
  }
  search.Print();
  std::printf("expectation: identical unplaced/machines across policies; "
              "explored paths and runtime fall sharply with IL and DL.\n");

  // --- 2. Weight rule (Eq. 4–5). ------------------------------------------
  sim::PrintExperimentHeader("Ablation 2", "priority weight rule (Eq. 4-5)");
  const core::PriorityWeights minimal =
      core::ComputeMinimalWeights(workload);
  Table weights({"weights", "w per class", "satisfies Eq.5", "violations%",
                 "machines"});
  auto weight_row = [&](const std::string& label,
                        const core::PriorityWeights& w,
                        std::int64_t base_for_scheduler) {
    core::AladdinOptions options;
    options.weight_base = base_for_scheduler;
    core::AladdinScheduler scheduler(options);
    const sim::RunMetrics m = sim::RunExperiment(scheduler, workload, config);
    std::string per_class;
    for (std::size_t k = 0; k < w.weight.size(); ++k) {
      if (k > 0) per_class += "/";
      per_class += std::to_string(w.weight[k]);
    }
    weights.Cell(label)
        .Cell(per_class)
        .Cell(core::SatisfiesEq5(w, workload) ? "yes" : "NO")
        .Cell(m.audit.ViolationPercent(), 2)
        .Cell(static_cast<std::int64_t>(m.used_machines))
        .EndRow();
  };
  weight_row("derived minimal", minimal, 0);
  for (std::int64_t base : {16, 32, 64, 128}) {
    weight_row("geometric base " + std::to_string(base),
               core::MakeGeometricWeights(cluster::kPriorityClasses, base),
               base);
  }
  weights.Print();
  std::printf("expectation: every base in the paper's sweep satisfies Eq. 5 "
              "and yields the same (zero-violation) outcome.\n");

  // --- 3. Repair / compaction contribution. -------------------------------
  // Run on a deliberately tight cluster (82 % of the normal machine count)
  // so the augmentation pass alone cannot place everything and the repair
  // mechanisms have real work to do.
  sim::PrintExperimentHeader("Ablation 3",
                             "migration/preemption repair and compaction "
                             "(tight cluster: 82% of machines)");
  sim::ExperimentConfig tight = config;
  tight.machines = config.machines * 82 / 100;
  Table repair({"configuration", "unplaced", "machines", "migrations",
                "preemptions"});
  struct Variant {
    const char* name;
    bool repair, compaction;
  };
  for (const Variant& v :
       {Variant{"no repair, no compaction", false, false},
        Variant{"repair only", true, false},
        Variant{"repair + compaction (full)", true, true}}) {
    core::AladdinOptions options;
    options.enable_repair = v.repair;
    options.enable_compaction = v.compaction;
    core::AladdinScheduler scheduler(options);
    const sim::RunMetrics m = sim::RunExperiment(scheduler, workload, tight);
    repair.Cell(v.name)
        .Cell(static_cast<std::int64_t>(m.audit.unplaced))
        .Cell(static_cast<std::int64_t>(m.used_machines))
        .Cell(m.migrations)
        .Cell(m.preemptions)
        .EndRow();
  }
  repair.Print();
  std::printf("expectation: repair eliminates the stranded containers the "
              "pure augmentation pass leaves; compaction trims machines at "
              "a bounded migration cost (Fig. 7 / Fig. 13b).\n");

  // --- 4. Max-flow relaxation bound (Fig. 4 network, solved exactly). -----
  sim::PrintExperimentHeader(
      "Ablation 4", "linear max-flow relaxation of the Fig. 4 network vs "
                    "Algorithm 1's integral, constraint-respecting result");
  {
    const cluster::Topology topo = trace::MakeAlibabaCluster(config.machines);
    const auto empty_state = workload.MakeState(topo);
    const core::RelaxationBound bound =
        core::SolveRelaxation(workload, empty_state);
    core::AladdinScheduler scheduler;
    const sim::RunMetrics m = sim::RunExperiment(scheduler, workload, config);
    // With zero unplaced containers, Aladdin's placed CPU is the demand.
    std::int64_t placed_cpu = 0;
    for (const auto& c : workload.containers()) {
      placed_cpu += c.request.cpu_millis();
    }
    Table table({"quantity", "CPU cores"});
    table.Cell("total demand").Cell(bound.demand_cpu_millis / 1000).EndRow();
    table.Cell("relaxation bound (no anti-affinity, divisible)")
        .Cell(bound.placeable_cpu_millis / 1000)
        .EndRow();
    table.Cell("Aladdin placed (integral, all constraints)")
        .Cell(m.audit.unplaced == 0 ? placed_cpu / 1000 : -1)
        .EndRow();
    table.Print();
    std::printf("network size: %zu vertices, %zu edges (the naive "
                "container-x-machine graph would need %zu edges).\n",
                bound.vertices, bound.edges,
                workload.container_count() * config.machines);
  }
  if (!obs_cli.Finish()) return 1;
  return 0;
}

// Reproduces Fig. 8 (workload features): the CDF of containers per
// application and the constraint counts, next to the paper's reported
// numbers. Also self-checks the generator against every distributional fact
// stated in §V.A.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "obs/cli.h"
#include "common/table.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/trace_stats.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  auto& scale = flags.Double("scale", 1.0, "workload scale (1.0 = paper)");
  auto& seed = flags.Int64("seed", 42, "trace seed");
  aladdin::obs::ObsCli obs_cli(flags);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  trace::AlibabaTraceOptions options;
  options.scale = scale;
  options.seed = static_cast<std::uint64_t>(seed);
  const trace::Workload workload = trace::GenerateAlibabaLike(options);
  const auto heavy_threshold = static_cast<std::int64_t>(
      static_cast<double>(options.heavy_conflict_containers) * scale);
  const trace::WorkloadStats stats =
      trace::ComputeWorkloadStats(workload, heavy_threshold);

  sim::PrintExperimentHeader("Fig. 8(b)", "workload constraint counts");
  Table counts({"metric", "measured", "paper (scale 1.0)"});
  counts.Cell("applications")
      .Cell(static_cast<std::int64_t>(stats.applications))
      .Cell("13,056")
      .EndRow();
  counts.Cell("containers")
      .Cell(static_cast<std::int64_t>(stats.containers))
      .Cell("~100,000")
      .EndRow();
  counts.Cell("apps with anti-affinity")
      .Cell(static_cast<std::int64_t>(stats.apps_with_anti_affinity))
      .Cell("9,400 (~70%)")
      .EndRow();
  counts.Cell("apps with priority")
      .Cell(static_cast<std::int64_t>(stats.apps_with_priority))
      .Cell("2,088 (~15%)")
      .EndRow();
  counts.Cell("single-instance apps %")
      .Cell(stats.SingleInstanceFraction() * 100.0, 1)
      .Cell("64%")
      .EndRow();
  counts.Cell("apps under 50 containers %")
      .Cell(stats.Below50Fraction() * 100.0, 1)
      .Cell("85% (see EXPERIMENTS.md)")
      .EndRow();
  counts.Cell("largest app (containers)")
      .Cell(static_cast<std::int64_t>(stats.max_app_size))
      .Cell("> 2,000")
      .EndRow();
  counts.Cell("apps conflicting with > " +
              std::to_string(heavy_threshold) + " containers")
      .Cell(static_cast<std::int64_t>(stats.heavy_conflicter_apps))
      .Cell("\"several\"")
      .EndRow();
  counts.Cell("max request cpu (cores)")
      .Cell(stats.max_request.cpu_millis() / 1000)
      .Cell("16")
      .EndRow();
  counts.Print();

  sim::PrintExperimentHeader(
      "Fig. 8(a)", "CDF of container numbers per application: P(size <= v)");
  Table cdf({"app size v", "P(size <= v)", "apps <= v"});
  std::vector<std::int64_t> sizes;
  sizes.reserve(workload.application_count());
  for (const auto& app : workload.applications()) {
    sizes.push_back(static_cast<std::int64_t>(app.containers.size()));
  }
  std::sort(sizes.begin(), sizes.end());
  for (std::int64_t v : {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000}) {
    const auto below = static_cast<std::size_t>(
        std::upper_bound(sizes.begin(), sizes.end(), v) - sizes.begin());
    cdf.Cell(v)
        .Cell(static_cast<double>(below) / static_cast<double>(sizes.size()),
              4)
        .Cell(static_cast<std::int64_t>(below))
        .EndRow();
  }
  cdf.Cell(sizes.back())
      .Cell(1.0, 4)
      .Cell(static_cast<std::int64_t>(sizes.size()))
      .EndRow();
  cdf.Print();
  if (!obs_cli.Finish()) return 1;
  return 0;
}

// Online scheduling bench over the co-design stack (§IV.C Fig. 6 + §IV.D
// mixed clusters): waves of long-lived deployments and short-lived batch
// jobs stream through EHC → MA → RE tick by tick. The paper's "acceptable
// placement latency" goal is that each resolve stays in the sub-second
// range even as the cluster fills; this bench reports per-tick resolver
// wall time, binding throughput, and end-state placement quality.
//
// --incremental=false runs the historical rebuild-per-tick resolver (the
// A/B baseline); --json=PATH emits a BENCH_*.json for tools/perf_compare.py.
// Both modes bind the same pods to the same nodes — the final audit line
// is the witness.
#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/audit.h"
#include "common/bench_json.h"
#include "common/flags.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/relaxation.h"
#include "k8s/simulator.h"
#include "obs/cli.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "sim/report.h"

using namespace aladdin;

namespace {

// Post-hoc placement audit: rebuild a ClusterState from the adaptor's final
// snapshot (bound pods deployed) and recount violations from scratch, so
// the number is independent of any resolver-internal state.
cluster::AuditReport AuditFinalState(k8s::ModelAdaptor& adaptor) {
  cluster::ClusterState state =
      adaptor.workload().MakeState(adaptor.topology());
  for (k8s::PodUid uid : adaptor.BoundPods()) {
    const k8s::Pod* pod = adaptor.FindPod(uid);
    state.Deploy(adaptor.ContainerOf(uid), adaptor.MachineOf(pod->node));
  }
  return cluster::Audit(state);
}

// Cluster occupancy recomputed from the adaptor snapshot for --timeseries:
// O(bound pods + nodes) per tick, paid only when the flag is set.
struct Occupancy {
  std::size_t used_machines = 0;
  double avg_util_pct = 0.0;
};

Occupancy MeasureOccupancy(k8s::ModelAdaptor& adaptor) {
  const cluster::Topology& topology = adaptor.topology();
  std::vector<cluster::ResourceVector> used(topology.machine_count());
  for (k8s::PodUid uid : adaptor.BoundPods()) {
    const k8s::Pod* pod = adaptor.FindPod(uid);
    const cluster::MachineId m = adaptor.MachineOf(pod->node);
    if (m.valid()) {
      used[static_cast<std::size_t>(m.value())] += pod->spec.requests;
    }
  }
  Occupancy occ;
  double share_sum = 0.0;
  for (const auto& machine : topology.machines()) {
    const auto& u = used[static_cast<std::size_t>(machine.id.value())];
    if (u.IsZero()) continue;
    ++occ.used_machines;
    share_sum += u.DominantShareOf(machine.capacity);
  }
  if (occ.used_machines > 0) {
    occ.avg_util_pct =
        share_sum / static_cast<double>(occ.used_machines) * 100.0;
  }
  return occ;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  auto& nodes = flags.Int64("nodes", 400, "cluster size");
  auto& ticks = flags.Int64("ticks", 12, "simulated ticks");
  auto& lla_wave = flags.Int64("lla_wave", 40,
                               "long-lived pods submitted per tick");
  auto& batch_wave = flags.Int64("batch_wave", 120,
                                 "batch tasks submitted per tick");
  auto& seed = flags.Int64("seed", 42, "workload seed");
  auto& incremental = flags.Bool("incremental", true,
                                 "reuse scheduling state across ticks "
                                 "(false = rebuild-per-tick baseline)");
  auto& threads = flags.Int64("threads", 0,
                              "search threads (0 = hardware concurrency, "
                              "1 = serial); with --shards this is the "
                              "shard-solve pool size");
  auto& shards = flags.Int64("shards", 0,
                             "partition the cluster into this many shards "
                             "solved concurrently (0 = unsharded; 1 is "
                             "bit-identical to 0)");
  auto& routing = flags.String("routing", "least-utilized",
                               "shard routing policy: hash, least-utilized, "
                               "constraint-driven");
  auto& batch = flags.Int64("batch", 0,
                            "micro-batch size for the long-lived solve "
                            "(0 = one solve per tick; a size covering the "
                            "whole tick is bit-identical to 0)");
  auto& batch_deadline =
      flags.Int64("batch_deadline_ticks", 1,
                  "with --batch, solve long-lived pods only every N ticks "
                  "(deferred ticks park them under batch_deferred)");
  auto& slo_ticks = flags.Int64("slo_ticks", 4,
                                "admission SLO objective: this share of pods "
                                "must bind within this many ticks");
  auto& slo_pct = flags.Double("slo_pct", 99.0,
                               "admission SLO objective percent");
  auto& slo_report = flags.String("slo_report", "",
                                  "write the final SLO snapshot (the /slo "
                                  "endpoint JSON) to this path");
  auto& json = flags.String("json", "",
                            "write BENCH json results to this path");
  obs::ObsCli obs_cli(flags);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  sim::PrintExperimentHeader(
      "Online", "streaming waves through EHC -> MA -> RE (Fig. 6 stack)");

  k8s::ResolverOptions options;
  options.aladdin = k8s::Resolver::DefaultOptions();
  options.aladdin.threads = static_cast<int>(threads);
  options.incremental = incremental;
  options.shards = static_cast<int>(shards);
  options.routing = core::ShardRoutingFromName(routing);
  if (options.routing == core::ShardRouting::kCount) {
    LOG_ERROR << "unknown --routing '" << routing
              << "' (hash, least-utilized, constraint-driven)";
    return 1;
  }
  options.slo.wait_ticks = slo_ticks;
  options.slo.percent = slo_pct;
  options.batch = static_cast<int>(batch);
  options.batch_deadline_ticks = static_cast<int>(batch_deadline);
  options.watchdog = obs_cli.watchdog_requested();
  k8s::ClusterSimulator sim(options);
  sim.AddNodes(static_cast<std::size_t>(nodes),
               cluster::ResourceVector::Cores(32, 64));

  std::optional<sim::TimeSeriesWriter> timeseries;
  if (!obs_cli.timeseries_path().empty()) {
    timeseries.emplace(obs_cli.timeseries_path());
    if (!timeseries->ok()) return 1;
  }
  // Per-cause unschedulable totals across all ticks (provenance histogram).
  std::array<std::int64_t, static_cast<std::size_t>(obs::Cause::kCount)>
      cause_totals{};

  // Per-shard totals across all ticks (--shards only).
  std::vector<core::ShardTickStats> shard_totals;

  // Micro-batch size histogram across all ticks (--batch only): how the
  // long-lived waves actually chunked, size -> number of batches.
  std::map<std::size_t, std::int64_t> batch_histogram;
  std::int64_t batches_solved = 0;

  Rng rng(static_cast<std::uint64_t>(seed));
  Sample resolve_ms;
  double total_seconds = 0.0;
  double total_tick_seconds = 0.0;
  std::int64_t total_bindings = 0;
  const std::vector<obs::PhaseDelta> phases_before =
      obs::MetricsEnabled() ? obs::CapturePhases()
                            : std::vector<obs::PhaseDelta>{};
  Table table({"tick", "pending", "bound", "migr", "preempt", "unsched",
               "batch done", "resolve ms"});
  std::int64_t app_counter = 0;
  for (std::int64_t t = 0; t < ticks; ++t) {
    // A wave of LLA deployments with mixed constraints.
    std::int64_t submitted = 0;
    while (submitted < lla_wave) {
      const auto replicas =
          static_cast<std::size_t>(rng.UniformInt(1, 12));
      k8s::PodSpec spec;
      spec.requests = cluster::ResourceVector::Cores(rng.UniformInt(1, 8),
                                                     rng.UniformInt(2, 16));
      spec.priority =
          rng.Bernoulli(0.15)
              ? static_cast<cluster::Priority>(rng.UniformInt(1, 3))
              : 0;
      spec.anti_affinity_within = rng.Bernoulli(0.7);
      sim.SubmitDeployment("lla-" + std::to_string(app_counter++), replicas,
                           spec);
      submitted += static_cast<std::int64_t>(replicas);
    }
    // And a batch job that holds resources for a couple of ticks.
    sim.SubmitBatchJob("batch-" + std::to_string(t),
                       static_cast<std::size_t>(batch_wave),
                       cluster::ResourceVector::Cores(1, 2),
                       /*lifetime_ticks=*/2);

    WallTimer tick_timer;
    const k8s::ResolveStats stats = sim.Tick();
    total_tick_seconds += tick_timer.ElapsedSeconds();
    resolve_ms.Add(stats.wall_seconds * 1e3);
    total_seconds += stats.wall_seconds;
    total_bindings += static_cast<std::int64_t>(stats.new_bindings);
    table.Cell(static_cast<std::int64_t>(stats.tick))
        .Cell(static_cast<std::int64_t>(stats.pending_before))
        .Cell(static_cast<std::int64_t>(stats.new_bindings))
        .Cell(static_cast<std::int64_t>(stats.migrations))
        .Cell(static_cast<std::int64_t>(stats.preemptions))
        .Cell(static_cast<std::int64_t>(stats.unschedulable))
        .Cell(sim.completed_tasks())
        .Cell(stats.wall_seconds * 1e3, 2)
        .EndRow();
    for (const auto& [cause, n] : stats.unschedulable_causes) {
      cause_totals[static_cast<std::size_t>(cause)] +=
          static_cast<std::int64_t>(n);
    }
    for (std::size_t size : stats.batch_sizes) {
      ++batch_histogram[size];
      ++batches_solved;
    }
    if (!stats.shards.empty()) {
      if (shard_totals.size() < stats.shards.size()) {
        shard_totals.resize(stats.shards.size());
      }
      for (const core::ShardTickStats& s : stats.shards) {
        core::ShardTickStats& total =
            shard_totals[static_cast<std::size_t>(s.shard)];
        total.shard = s.shard;
        total.machines = s.machines;
        total.routed += s.routed;
        total.placed += s.placed;
        total.unplaced += s.unplaced;
        total.solve_seconds += s.solve_seconds;
      }
    }
    if (timeseries.has_value()) {
      const Occupancy occ = MeasureOccupancy(sim.adaptor());
      sim::TimeSeriesPoint point;
      point.tick = stats.tick;
      point.pending = stats.pending_before;
      point.bindings = stats.new_bindings;
      point.unschedulable = stats.unschedulable;
      point.migrations = stats.migrations;
      point.preemptions = stats.preemptions;
      point.used_machines = occ.used_machines;
      point.avg_util_pct = occ.avg_util_pct;
      point.frag_pct =
          occ.used_machines > 0 ? 100.0 - occ.avg_util_pct : 0.0;
      point.wall_seconds = stats.wall_seconds;
      point.phase_seconds = obs::ExclusiveSeconds(stats.phases);
      point.slo_attainment_pct = stats.slo.attainment_pct;
      point.pending_age_p99 = stats.pending_ages.p99;
      if (options.watchdog) {
        const obs::WatchdogSnapshot alerts =
            sim.resolver().watchdog().Snapshot();
        point.alerts_open = alerts.open_now;
        point.alerts_open_by_kind = alerts.open_by_kind;
      }
      if (!timeseries->Append(point)) {
        LOG_ERROR << "failed writing " << obs_cli.timeseries_path();
        return 1;
      }
    }
  }
  table.Print();

  // Where the tick time went, from the obs phase registry. The exclusive
  // rows partition the ticks, so their coverage row should land within a
  // few percent of the measured tick wall time (tools/check_trace.py and
  // the obs tests pin this down).
  if (obs::MetricsEnabled()) {
    const std::vector<obs::PhaseDelta> run_phases =
        obs::DiffPhases(phases_before, obs::CapturePhases());
    std::printf("\nper-tick phase breakdown (%lld ticks, %.3f ms total):\n",
                static_cast<long long>(ticks), total_tick_seconds * 1e3);
    sim::PrintPhaseTable(run_phases, total_tick_seconds);
    const double covered = obs::ExclusiveSeconds(run_phases);
    std::printf("phase coverage: %.1f%% of measured tick time\n",
                total_tick_seconds > 0.0
                    ? covered / total_tick_seconds * 100.0
                    : 0.0);
  }

  // Micro-batch size histogram (--batch): one row per observed chunk size.
  if (!batch_histogram.empty()) {
    std::printf("\nmicro-batch size histogram (%lld batches over %lld "
                "ticks):\n",
                static_cast<long long>(batches_solved),
                static_cast<long long>(ticks));
    Table batch_table({"batch size", "batches"});
    for (const auto& [size, count] : batch_histogram) {
      batch_table.Cell(static_cast<std::int64_t>(size)).Cell(count).EndRow();
    }
    batch_table.Print();
  }

  // Per-shard activity (--shards): how evenly the routing spread the work
  // and where the solve wall time went. Solves run concurrently, so the
  // wall-clock win is roughly max(solve s) vs their sum.
  if (!shard_totals.empty()) {
    std::printf("\nper-shard breakdown (totals over %lld ticks):\n",
                static_cast<long long>(ticks));
    Table shard_table(
        {"shard", "machines", "routed", "placed", "unplaced", "solve s"});
    double max_solve = 0.0;
    double sum_solve = 0.0;
    for (const core::ShardTickStats& s : shard_totals) {
      shard_table.Cell(static_cast<std::int64_t>(s.shard))
          .Cell(static_cast<std::int64_t>(s.machines))
          .Cell(static_cast<std::int64_t>(s.routed))
          .Cell(static_cast<std::int64_t>(s.placed))
          .Cell(static_cast<std::int64_t>(s.unplaced))
          .Cell(s.solve_seconds, 3)
          .EndRow();
      max_solve = std::max(max_solve, s.solve_seconds);
      sum_solve += s.solve_seconds;
    }
    shard_table.Print();
    std::printf("shard solve: sum=%.3f s, critical path=%.3f s "
                "(parallel speedup bound %.2fx)\n",
                sum_solve, max_solve,
                max_solve > 0.0 ? sum_solve / max_solve : 0.0);
  }

  // Why pods went unschedulable, accumulated across all ticks from the
  // resolver's per-cause breakdown (the decision journal's vocabulary).
  std::vector<std::pair<obs::Cause, std::int64_t>> cause_counts;
  for (std::size_t i = 0; i < cause_totals.size(); ++i) {
    if (cause_totals[i] > 0) {
      cause_counts.emplace_back(static_cast<obs::Cause>(i), cause_totals[i]);
    }
  }
  if (!cause_counts.empty()) {
    std::printf("\nunschedulable cause histogram (all ticks):\n");
    sim::PrintCauseTable(cause_counts);
  }

  // Admission-SLO attainment (obs/lifecycle + obs/slo): the resolver
  // publishes the same snapshot the /statusz and /slo endpoints serve, so
  // the table here matches what a live scrape would have seen at the last
  // tick. --slo_report dumps the machine-readable form for CI artifacts.
  const obs::IntrospectionStatus introspection = obs::IntrospectionSnapshot();
  if (obs::IntrospectionPublished()) {
    std::printf("\nadmission SLO attainment (per app, worst first):\n");
    sim::PrintSloTable(introspection.slo);
    if (!slo_report.empty()) {
      std::ofstream os(slo_report, std::ios::out | std::ios::trunc);
      if (!os || !(os << obs::RenderSloJson(introspection) << '\n')) {
        LOG_ERROR << "failed to write " << slo_report;
        return 1;
      }
      std::printf("slo report written to %s\n", slo_report.c_str());
    }
  }
  // Watchdog alert stream (--watchdog): the same snapshot /alertz renders,
  // summarised one row per alert. `alert_stream` also feeds the bench json.
  const obs::WatchdogSnapshot alert_stream =
      options.watchdog ? sim.resolver().watchdog().Snapshot()
                       : obs::WatchdogSnapshot{};
  if (options.watchdog) {
    std::printf("\nwatchdog alert stream (final tick snapshot):\n");
    sim::PrintAlertTable(alert_stream);
  }
  if (timeseries.has_value()) {
    std::printf("timeseries written to %s\n",
                obs_cli.timeseries_path().c_str());
  }

  // Relaxation-bound witness (outside tick timing): solve the max-flow
  // relaxation of the final cluster once, so a --trace of this bench also
  // exercises the flow/ solver phases (core/relax_* -> flow/dinic).
  if (obs::CurrentMode() != 0) {
    cluster::ClusterState relax_state =
        sim.adaptor().workload().MakeState(sim.adaptor().topology());
    for (k8s::PodUid uid : sim.adaptor().BoundPods()) {
      const k8s::Pod* pod = sim.adaptor().FindPod(uid);
      relax_state.Deploy(sim.adaptor().ContainerOf(uid),
                         sim.adaptor().MachineOf(pod->node));
    }
    const core::RelaxationBound bound =
        core::SolveRelaxation(sim.adaptor().workload(), relax_state);
    std::printf("relaxation bound: placeable=%lld demand=%lld cpu-millis\n",
                static_cast<long long>(bound.placeable_cpu_millis),
                static_cast<long long>(bound.demand_cpu_millis));
  }

  std::printf("resolve latency ms: p50=%.2f p99=%.2f max=%.2f "
              "(goal: sub-second at production scale)\n",
              resolve_ms.Percentile(50), resolve_ms.Percentile(99),
              resolve_ms.max());
  std::printf("final: %zu pods bound, %zu pending, %lld batch tasks "
              "completed over %lld ticks\n",
              sim.adaptor().BoundPods().size(),
              sim.adaptor().PendingPods().size(),
              static_cast<long long>(sim.completed_tasks()),
              static_cast<long long>(sim.now()));

  // Placement-quality witness for the incremental/parallel A/B: identical
  // scheduling decisions give identical audit numbers.
  const cluster::AuditReport audit = AuditFinalState(sim.adaptor());
  std::printf("audit: %zu containers, %zu placed, %zu unplaced "
              "(%zu resources, %zu anti-affinity, %zu scheduler), "
              "%zu colocation violations, violation%%=%.3f\n",
              audit.total_containers, audit.placed, audit.unplaced,
              audit.unplaced_resources, audit.unplaced_anti_affinity,
              audit.unplaced_scheduler, audit.colocation_violations,
              audit.ViolationPercent());

  BenchJson out("online");
  {
    out.Tag("nodes", nodes);
    out.Tag("ticks", ticks);
    out.Tag("lla_wave", lla_wave);
    out.Tag("batch_wave", batch_wave);
    out.Tag("seed", seed);
    out.Tag("mode", incremental ? "incremental" : "rebuild");
    out.Tag("threads", threads);
    out.Tag("shards", shards);
    if (shards > 0) out.Tag("routing", routing);
    if (batch > 0) {
      out.Tag("batch", batch);
      out.Tag("batch_deadline_ticks", batch_deadline);
    }
    out.Percentiles("resolve_ms", resolve_ms);
    out.Metric("total_resolve_s", total_seconds, "s");
    out.Metric("bindings_per_s",
               total_seconds > 0 ? static_cast<double>(total_bindings) /
                                       total_seconds
                                 : 0.0,
               "rate");
    out.Metric("pods_bound",
               static_cast<double>(sim.adaptor().BoundPods().size()), "count");
    out.Metric("pods_pending",
               static_cast<double>(sim.adaptor().PendingPods().size()),
               "count");
    out.Metric("batch_completed", static_cast<double>(sim.completed_tasks()),
               "count");
    out.Metric("audit_placed", static_cast<double>(audit.placed), "count");
    out.Metric("audit_unplaced", static_cast<double>(audit.unplaced), "count");
    out.Metric("audit_colocation_violations",
               static_cast<double>(audit.colocation_violations), "count");
    if (obs::IntrospectionPublished()) {
      out.Metric("slo_admitted",
                 static_cast<double>(introspection.slo.admitted), "count");
      out.Metric("slo_violations",
                 static_cast<double>(introspection.slo.violations), "count");
      out.Metric("slo_attainment_pct", introspection.slo.attainment_pct,
                 "pct");
      out.Metric("admission_wait_p99_ticks",
                 static_cast<double>(introspection.slo.p99), "count");
    }
    if (batch > 0) {
      out.Metric("batches_solved", static_cast<double>(batches_solved),
                 "count");
      std::size_t batch_size_max = 0;
      for (const auto& [size, count] : batch_histogram) {
        batch_size_max = std::max(batch_size_max, size);
      }
      out.Metric("batch_size_max", static_cast<double>(batch_size_max),
                 "count");
    }
    if (options.watchdog) {
      out.Metric("alerts_opened_total",
                 static_cast<double>(alert_stream.opened_total), "count");
      out.Metric("alerts_resolved_total",
                 static_cast<double>(alert_stream.resolved_total), "count");
    }
    if (!shard_totals.empty()) {
      double max_solve = 0.0;
      double sum_solve = 0.0;
      std::int64_t routed = 0;
      for (const core::ShardTickStats& s : shard_totals) {
        max_solve = std::max(max_solve, s.solve_seconds);
        sum_solve += s.solve_seconds;
        routed += static_cast<std::int64_t>(s.routed);
      }
      out.Metric("shard_solve_sum_s", sum_solve, "s");
      out.Metric("shard_solve_max_s", max_solve, "s");
      out.Metric("shard_routed", static_cast<double>(routed), "count");
    }
  }

  // Flush the obs layer: trace file, --metrics stdout dump, and the metrics
  // registry appended to the bench json (counters identity-checked by
  // tools/perf_compare.py, phase times ratio-checked).
  if (!obs_cli.Finish(json.empty() ? nullptr : &out)) return 1;

  if (!json.empty()) {
    if (!out.WriteFile(json)) {
      LOG_ERROR << "failed to write " << json;
      return 1;
    }
    std::printf("bench json written to %s\n", json.c_str());
  }
  return 0;
}

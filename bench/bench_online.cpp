// Online scheduling bench over the co-design stack (§IV.C Fig. 6 + §IV.D
// mixed clusters): waves of long-lived deployments and short-lived batch
// jobs stream through EHC → MA → RE tick by tick. The paper's "acceptable
// placement latency" goal is that each resolve stays in the sub-second
// range even as the cluster fills; this bench reports per-tick resolver
// wall time, binding throughput, and end-state placement quality.
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "k8s/simulator.h"
#include "sim/report.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  auto& nodes = flags.Int64("nodes", 400, "cluster size");
  auto& ticks = flags.Int64("ticks", 12, "simulated ticks");
  auto& lla_wave = flags.Int64("lla_wave", 40,
                               "long-lived pods submitted per tick");
  auto& batch_wave = flags.Int64("batch_wave", 120,
                                 "batch tasks submitted per tick");
  auto& seed = flags.Int64("seed", 42, "workload seed");
  if (!flags.Parse(argc, argv)) return 1;

  sim::PrintExperimentHeader(
      "Online", "streaming waves through EHC -> MA -> RE (Fig. 6 stack)");

  k8s::ClusterSimulator sim;
  sim.AddNodes(static_cast<std::size_t>(nodes),
               cluster::ResourceVector::Cores(32, 64));

  Rng rng(static_cast<std::uint64_t>(seed));
  Sample resolve_ms;
  Table table({"tick", "pending", "bound", "migr", "preempt", "unsched",
               "batch done", "resolve ms"});
  std::int64_t app_counter = 0;
  for (std::int64_t t = 0; t < ticks; ++t) {
    // A wave of LLA deployments with mixed constraints.
    std::int64_t submitted = 0;
    while (submitted < lla_wave) {
      const auto replicas =
          static_cast<std::size_t>(rng.UniformInt(1, 12));
      k8s::PodSpec spec;
      spec.requests = cluster::ResourceVector::Cores(rng.UniformInt(1, 8),
                                                     rng.UniformInt(2, 16));
      spec.priority =
          rng.Bernoulli(0.15)
              ? static_cast<cluster::Priority>(rng.UniformInt(1, 3))
              : 0;
      spec.anti_affinity_within = rng.Bernoulli(0.7);
      sim.SubmitDeployment("lla-" + std::to_string(app_counter++), replicas,
                           spec);
      submitted += static_cast<std::int64_t>(replicas);
    }
    // And a batch job that holds resources for a couple of ticks.
    sim.SubmitBatchJob("batch-" + std::to_string(t),
                       static_cast<std::size_t>(batch_wave),
                       cluster::ResourceVector::Cores(1, 2),
                       /*lifetime_ticks=*/2);

    const k8s::ResolveStats stats = sim.Tick();
    resolve_ms.Add(stats.wall_seconds * 1e3);
    table.Cell(static_cast<std::int64_t>(stats.tick))
        .Cell(static_cast<std::int64_t>(stats.pending_before))
        .Cell(static_cast<std::int64_t>(stats.new_bindings))
        .Cell(static_cast<std::int64_t>(stats.migrations))
        .Cell(static_cast<std::int64_t>(stats.preemptions))
        .Cell(static_cast<std::int64_t>(stats.unschedulable))
        .Cell(sim.completed_tasks())
        .Cell(stats.wall_seconds * 1e3, 2)
        .EndRow();
  }
  table.Print();

  std::printf("resolve latency ms: p50=%.2f p99=%.2f max=%.2f "
              "(goal: sub-second at production scale)\n",
              resolve_ms.Percentile(50), resolve_ms.Percentile(99),
              resolve_ms.max());
  std::printf("final: %zu pods bound, %zu pending, %lld batch tasks "
              "completed over %lld ticks\n",
              sim.adaptor().BoundPods().size(),
              sim.adaptor().PendingPods().size(),
              static_cast<long long>(sim.completed_tasks()),
              static_cast<long long>(sim.now()));
  return 0;
}

// Microbenchmarks for the flow substrate (google-benchmark): SPFA vs
// Bellman–Ford shortest paths, Dinic vs Edmonds–Karp max flow, min-cost
// max-flow throughput, and multidimensional augmentation. Not a paper
// figure; this pins the solver costs the scheduling-level latency numbers
// (Fig. 12) are built on.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "core/scheduler.h"
#include "flow/max_flow.h"
#include "flow/min_cost_flow.h"
#include "flow/multidim.h"
#include "flow/shortest_path.h"
#include "flow/workspace.h"
#include "sim/experiment.h"
#include "trace/arrival.h"

using namespace aladdin;

namespace {

// Layered random DAG shaped like a scheduling graph: source -> T -> N ->
// sink, with `width` vertices per layer and `degree` arcs per task vertex.
flow::Graph MakeLayeredGraph(std::int64_t width, std::int64_t degree,
                             VertexId& source, VertexId& sink,
                             std::uint64_t seed) {
  flow::Graph graph;
  source = graph.AddVertex();
  sink = graph.AddVertex();
  const VertexId tasks = graph.AddVertices(static_cast<std::size_t>(width));
  const VertexId machines =
      graph.AddVertices(static_cast<std::size_t>(width));
  Rng rng(seed);
  for (std::int64_t i = 0; i < width; ++i) {
    const VertexId t(tasks.value() + static_cast<std::int32_t>(i));
    graph.AddArc(source, t, rng.UniformInt(1, 8), 0);
    for (std::int64_t d = 0; d < degree; ++d) {
      const VertexId n(machines.value() +
                       static_cast<std::int32_t>(rng.UniformInt(0, width - 1)));
      graph.AddArc(t, n, rng.UniformInt(1, 8), rng.UniformInt(0, 63));
    }
  }
  for (std::int64_t i = 0; i < width; ++i) {
    const VertexId n(machines.value() + static_cast<std::int32_t>(i));
    graph.AddArc(n, sink, rng.UniformInt(4, 32), 0);
  }
  return graph;
}

void BM_Spfa(benchmark::State& state) {
  VertexId s, t;
  flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::Spfa(graph, s));
  }
}
BENCHMARK(BM_Spfa)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BellmanFord(benchmark::State& state) {
  VertexId s, t;
  flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::BellmanFord(graph, s));
  }
}
BENCHMARK(BM_BellmanFord)->Arg(256)->Arg(1024);

void BM_Dinic(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    VertexId s, t;
    flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow::Dinic(graph, s, t));
  }
}
BENCHMARK(BM_Dinic)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EdmondsKarp(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    VertexId s, t;
    flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow::EdmondsKarp(graph, s, t));
  }
}
BENCHMARK(BM_EdmondsKarp)->Arg(256)->Arg(1024);

void BM_MinCostMaxFlow(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    VertexId s, t;
    flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow::MinCostMaxFlow(graph, s, t));
  }
}
BENCHMARK(BM_MinCostMaxFlow)->Arg(256)->Arg(1024);

void BM_MinCostMaxFlowDijkstra(benchmark::State& state) {
  flow::MinCostFlowOptions options;
  options.pathfinder = flow::MinCostFlowOptions::Pathfinder::kDijkstra;
  for (auto _ : state) {
    state.PauseTiming();
    VertexId s, t;
    flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        flow::MinCostMaxFlow(graph, s, t, flow::kInfiniteCapacity, options));
  }
}
BENCHMARK(BM_MinCostMaxFlowDijkstra)->Arg(256)->Arg(1024);

// The machine -> sink arcs are the last `width` forward arcs added by
// MakeLayeredGraph, in machine order.
std::vector<ArcId> SinkArcs(const flow::Graph& graph, std::int64_t width) {
  std::vector<ArcId> arcs;
  arcs.reserve(static_cast<std::size_t>(width));
  const auto first =
      static_cast<std::int32_t>(graph.arc_count()) - 2 * width;
  for (std::int64_t i = 0; i < width; ++i) {
    arcs.emplace_back(static_cast<std::int32_t>(first + 2 * i));
  }
  return arcs;
}

// The incremental hot path the scheduler relies on: a solved network whose
// machine capacities drift each round. Incremental = cancel excess flow on
// the shrunk arcs, retune capacities in place, warm-start Dinic from the
// surviving flow. Rebuild = reset all flows and re-solve from zero (the
// pre-incremental behaviour). Same mutation schedule on both, so the ratio
// is the reuse win.
void RecapacityRound(flow::Graph& graph, const std::vector<ArcId>& sink_arcs,
                     Rng& rng, bool cancel_excess, VertexId s, VertexId t) {
  // ~1.5% of machines drift per round — the sparse-churn regime the
  // scheduler's per-tick updates live in.
  const auto width = static_cast<std::int64_t>(sink_arcs.size());
  for (std::int64_t k = 0; k < width / 64 + 1; ++k) {
    const ArcId a =
        sink_arcs[static_cast<std::size_t>(rng.UniformInt(0, width - 1))];
    const flow::Capacity want = rng.UniformInt(0, 32);
    if (cancel_excess && graph.Flow(a) > want) {
      flow::CancelArcFlow(graph, a, graph.Flow(a) - want, s, t);
    }
    graph.SetCapacity(a, want);
  }
}

void BM_RecapacityIncremental(benchmark::State& state) {
  const std::int64_t width = state.range(0);
  VertexId s, t;
  flow::Graph graph = MakeLayeredGraph(width, 8, s, t, 1);
  const std::vector<ArcId> sink_arcs = SinkArcs(graph, width);
  flow::Dinic(graph, s, t);
  Rng rng(7);
  for (auto _ : state) {
    RecapacityRound(graph, sink_arcs, rng, /*cancel_excess=*/true, s, t);
    benchmark::DoNotOptimize(flow::Dinic(graph, s, t));  // warm start
  }
}
BENCHMARK(BM_RecapacityIncremental)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RecapacityRebuild(benchmark::State& state) {
  const std::int64_t width = state.range(0);
  VertexId s, t;
  flow::Graph graph = MakeLayeredGraph(width, 8, s, t, 1);
  const std::vector<ArcId> sink_arcs = SinkArcs(graph, width);
  flow::Dinic(graph, s, t);
  Rng rng(7);
  for (auto _ : state) {
    graph.ResetFlows();  // no flow to respect: capacities set directly
    RecapacityRound(graph, sink_arcs, rng, /*cancel_excess=*/false, s, t);
    benchmark::DoNotOptimize(flow::Dinic(graph, s, t));  // cold solve
  }
}
BENCHMARK(BM_RecapacityRebuild)->Arg(256)->Arg(1024)->Arg(4096);

// ------------------------------------------- adjacency layout A/B ----
// The CSR win in isolation: walk every out-arc list, summing arc ids.
// Csr iterates the frozen flat offsets[]/arc_ids[] arrays; Nested iterates
// a vector<vector<int32>> replica of the same adjacency (the pre-CSR
// layout, one heap block and one pointer-chase per vertex). Identical
// visit order and sum — the delta is pure memory layout.

void BM_AdjacencyScanCsr(benchmark::State& state) {
  VertexId s, t;
  const flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
  graph.Freeze();
  const auto n = static_cast<std::int32_t>(graph.vertex_count());
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (std::int32_t v = 0; v < n; ++v) {
      for (const std::int32_t a : graph.OutArcs(VertexId(v))) sum += a;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_AdjacencyScanCsr)->Arg(1024)->Arg(4096);

void BM_AdjacencyScanNested(benchmark::State& state) {
  VertexId s, t;
  const flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
  graph.Freeze();
  std::vector<std::vector<std::int32_t>> nested(graph.vertex_count());
  const auto n = static_cast<std::int32_t>(graph.vertex_count());
  for (std::int32_t v = 0; v < n; ++v) {
    const auto arcs = graph.OutArcs(VertexId(v));
    nested[static_cast<std::size_t>(v)].assign(arcs.begin(), arcs.end());
  }
  for (auto _ : state) {
    std::int64_t sum = 0;
    for (std::int32_t v = 0; v < n; ++v) {
      for (const std::int32_t a : nested[static_cast<std::size_t>(v)]) {
        sum += a;
      }
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_AdjacencyScanNested)->Arg(1024)->Arg(4096);

// -------------------------------- paper-scale aggregated network ----
// The shape of Aladdin's aggregated network at evaluation scale: app
// vertices fan into a sub-cluster -> rack -> machine aggregation tree over
// `machines` machines. Built and frozen once; each iteration is the
// steady-state re-solve (ResetFlows + Dinic over the frozen CSR with a
// reused workspace) — the per-tick solver cost the end-to-end latency
// numbers decompose into.
flow::Graph MakeAggregatedNetwork(std::int64_t machines, VertexId& source,
                                  VertexId& sink) {
  constexpr std::int64_t kMachinesPerRack = 40;
  constexpr std::int64_t kRacksPerSubCluster = 10;
  constexpr std::int64_t kApps = 256;
  const std::int64_t racks = (machines + kMachinesPerRack - 1) /
                             kMachinesPerRack;
  const std::int64_t subs = (racks + kRacksPerSubCluster - 1) /
                            kRacksPerSubCluster;

  flow::Graph graph;
  source = graph.AddVertex();
  sink = graph.AddVertex();
  const VertexId apps = graph.AddVertices(static_cast<std::size_t>(kApps));
  const VertexId sub0 = graph.AddVertices(static_cast<std::size_t>(subs));
  const VertexId rack0 = graph.AddVertices(static_cast<std::size_t>(racks));
  const VertexId mach0 =
      graph.AddVertices(static_cast<std::size_t>(machines));

  Rng rng(17);
  for (std::int64_t a = 0; a < kApps; ++a) {
    const VertexId app(apps.value() + static_cast<std::int32_t>(a));
    graph.AddArc(source, app, rng.UniformInt(8, 64));
    for (int d = 0; d < 4; ++d) {  // each app spans a few sub-clusters
      const VertexId sub(sub0.value() + static_cast<std::int32_t>(
                                            rng.UniformInt(0, subs - 1)));
      graph.AddArc(app, sub, rng.UniformInt(8, 32));
    }
  }
  for (std::int64_t r = 0; r < racks; ++r) {
    const VertexId sub(sub0.value() +
                       static_cast<std::int32_t>(r / kRacksPerSubCluster));
    const VertexId rack(rack0.value() + static_cast<std::int32_t>(r));
    graph.AddArc(sub, rack, rng.UniformInt(16, 128));
  }
  for (std::int64_t m = 0; m < machines; ++m) {
    const VertexId rack(rack0.value() +
                        static_cast<std::int32_t>(m / kMachinesPerRack));
    const VertexId machine(mach0.value() + static_cast<std::int32_t>(m));
    graph.AddArc(rack, machine, rng.UniformInt(1, 8));
    graph.AddArc(machine, sink, rng.UniformInt(1, 8));
  }
  return graph;
}

void BM_AggregatedNetworkResolve(benchmark::State& state) {
  VertexId s, t;
  flow::Graph graph = MakeAggregatedNetwork(state.range(0), s, t);
  graph.Freeze();
  flow::Workspace ws;
  for (auto _ : state) {
    graph.ResetFlows();
    benchmark::DoNotOptimize(flow::Dinic(graph, s, t, ws));
  }
}
BENCHMARK(BM_AggregatedNetworkResolve)->Arg(2000)->Arg(10000);

// ------------------------------------- batch-incremental refresh ----
// The ISSUE 9 hot path in isolation: a solved network absorbs a micro-batch
// of capacity retargets in one RefreshCapacities call. Warm = cancel only
// the excess flow on shrunk arcs and re-augment from the surviving flow;
// Cold = reset all flows, set capacities directly, re-solve from zero. Same
// mutation schedule on both, so the ratio is the warm-start win the batched
// scheduler banks once per micro-batch.
std::vector<flow::CapacityUpdate> MakeRefreshBatch(
    const std::vector<ArcId>& sink_arcs, Rng& rng) {
  const auto width = static_cast<std::int64_t>(sink_arcs.size());
  std::vector<flow::CapacityUpdate> updates;
  updates.reserve(static_cast<std::size_t>(width / 16 + 1));
  for (std::int64_t k = 0; k < width / 16 + 1; ++k) {
    flow::CapacityUpdate update;
    update.arc =
        sink_arcs[static_cast<std::size_t>(rng.UniformInt(0, width - 1))];
    update.capacity = rng.UniformInt(0, 32);
    updates.push_back(update);
  }
  return updates;
}

void BM_BatchRefreshWarm(benchmark::State& state) {
  const std::int64_t width = state.range(0);
  VertexId s, t;
  flow::Graph graph = MakeLayeredGraph(width, 8, s, t, 1);
  const std::vector<ArcId> sink_arcs = SinkArcs(graph, width);
  flow::Dinic(graph, s, t);
  flow::Workspace ws;
  Rng rng(7);
  for (auto _ : state) {
    const auto updates = MakeRefreshBatch(sink_arcs, rng);
    flow::RefreshCapacities(graph, updates, s, t, ws);
    benchmark::DoNotOptimize(flow::Dinic(graph, s, t, ws));  // warm start
  }
}
BENCHMARK(BM_BatchRefreshWarm)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BatchRefreshCold(benchmark::State& state) {
  const std::int64_t width = state.range(0);
  VertexId s, t;
  flow::Graph graph = MakeLayeredGraph(width, 8, s, t, 1);
  const std::vector<ArcId> sink_arcs = SinkArcs(graph, width);
  flow::Dinic(graph, s, t);
  flow::Workspace ws;
  Rng rng(7);
  for (auto _ : state) {
    const auto updates = MakeRefreshBatch(sink_arcs, rng);
    graph.ResetFlows();  // no flow to respect: capacities set directly
    for (const flow::CapacityUpdate& update : updates) {
      graph.SetCapacity(update.arc, update.capacity);
    }
    benchmark::DoNotOptimize(flow::Dinic(graph, s, t, ws));  // cold solve
  }
}
BENCHMARK(BM_BatchRefreshCold)->Arg(256)->Arg(1024)->Arg(4096);

// ------------------------------- group waterfall vs per-pod search ----
// End-to-end A/B of the group-decomposed pathfinder: one whole-trace
// Aladdin solve with the sorted-capacity waterfall on (arg 1) vs the
// per-container best-fit walk (arg 0). Placements are bit-identical by
// construction (the waterfall replays the walk exactly); the delta is the
// grouped scan over flat free/fits arrays vs one IL/DL search per pod.
void BM_GroupWaterfallVsDinic(benchmark::State& state) {
  const trace::Workload workload = sim::MakeBenchWorkload(0.02, 42);
  const cluster::Topology topology =
      trace::MakeAlibabaCluster(sim::BenchMachineCount(0.02));
  const auto arrival = trace::MakeArrivalSequence(
      workload, trace::ArrivalOrder::kRandom, 1);
  core::AladdinOptions options;
  options.group_waterfall = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    cluster::ClusterState cluster_state = workload.MakeState(topology);
    core::AladdinScheduler scheduler(options);
    sim::ScheduleRequest request;
    request.workload = &workload;
    request.arrival = &arrival;
    state.ResumeTiming();
    benchmark::DoNotOptimize(scheduler.Schedule(request, cluster_state));
  }
}
BENCHMARK(BM_GroupWaterfallVsDinic)->Arg(0)->Arg(1);

void BM_MultiDimMaxFlow(benchmark::State& state) {
  const auto width = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    flow::MultiDimGraph graph(2);
    const VertexId s = graph.AddVertex();
    const VertexId t = graph.AddVertex();
    Rng rng(3);
    std::vector<VertexId> mids;
    for (std::int64_t i = 0; i < width; ++i) {
      const VertexId v = graph.AddVertex();
      graph.AddArc(s, v, {rng.UniformInt(1, 8), rng.UniformInt(1, 16)});
      graph.AddArc(v, t, {rng.UniformInt(1, 8), rng.UniformInt(1, 16)});
      mids.push_back(v);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(graph.MaxFlow(s, t));
  }
}
BENCHMARK(BM_MultiDimMaxFlow)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();

// Microbenchmarks for the flow substrate (google-benchmark): SPFA vs
// Bellman–Ford shortest paths, Dinic vs Edmonds–Karp max flow, min-cost
// max-flow throughput, and multidimensional augmentation. Not a paper
// figure; this pins the solver costs the scheduling-level latency numbers
// (Fig. 12) are built on.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "flow/max_flow.h"
#include "flow/min_cost_flow.h"
#include "flow/multidim.h"
#include "flow/shortest_path.h"

using namespace aladdin;

namespace {

// Layered random DAG shaped like a scheduling graph: source -> T -> N ->
// sink, with `width` vertices per layer and `degree` arcs per task vertex.
flow::Graph MakeLayeredGraph(std::int64_t width, std::int64_t degree,
                             VertexId& source, VertexId& sink,
                             std::uint64_t seed) {
  flow::Graph graph;
  source = graph.AddVertex();
  sink = graph.AddVertex();
  const VertexId tasks = graph.AddVertices(static_cast<std::size_t>(width));
  const VertexId machines =
      graph.AddVertices(static_cast<std::size_t>(width));
  Rng rng(seed);
  for (std::int64_t i = 0; i < width; ++i) {
    const VertexId t(tasks.value() + static_cast<std::int32_t>(i));
    graph.AddArc(source, t, rng.UniformInt(1, 8), 0);
    for (std::int64_t d = 0; d < degree; ++d) {
      const VertexId n(machines.value() +
                       static_cast<std::int32_t>(rng.UniformInt(0, width - 1)));
      graph.AddArc(t, n, rng.UniformInt(1, 8), rng.UniformInt(0, 63));
    }
  }
  for (std::int64_t i = 0; i < width; ++i) {
    const VertexId n(machines.value() + static_cast<std::int32_t>(i));
    graph.AddArc(n, sink, rng.UniformInt(4, 32), 0);
  }
  return graph;
}

void BM_Spfa(benchmark::State& state) {
  VertexId s, t;
  flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::Spfa(graph, s));
  }
}
BENCHMARK(BM_Spfa)->Arg(256)->Arg(1024)->Arg(4096);

void BM_BellmanFord(benchmark::State& state) {
  VertexId s, t;
  flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow::BellmanFord(graph, s));
  }
}
BENCHMARK(BM_BellmanFord)->Arg(256)->Arg(1024);

void BM_Dinic(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    VertexId s, t;
    flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow::Dinic(graph, s, t));
  }
}
BENCHMARK(BM_Dinic)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EdmondsKarp(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    VertexId s, t;
    flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow::EdmondsKarp(graph, s, t));
  }
}
BENCHMARK(BM_EdmondsKarp)->Arg(256)->Arg(1024);

void BM_MinCostMaxFlow(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    VertexId s, t;
    flow::Graph graph = MakeLayeredGraph(state.range(0), 8, s, t, 1);
    state.ResumeTiming();
    benchmark::DoNotOptimize(flow::MinCostMaxFlow(graph, s, t));
  }
}
BENCHMARK(BM_MinCostMaxFlow)->Arg(256)->Arg(1024);

void BM_MultiDimMaxFlow(benchmark::State& state) {
  const auto width = static_cast<std::int64_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    flow::MultiDimGraph graph(2);
    const VertexId s = graph.AddVertex();
    const VertexId t = graph.AddVertex();
    Rng rng(3);
    std::vector<VertexId> mids;
    for (std::int64_t i = 0; i < width; ++i) {
      const VertexId v = graph.AddVertex();
      graph.AddArc(s, v, {rng.UniformInt(1, 8), rng.UniformInt(1, 16)});
      graph.AddArc(v, t, {rng.UniformInt(1, 8), rng.UniformInt(1, 16)});
      mids.push_back(v);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(graph.MaxFlow(s, t));
  }
}
BENCHMARK(BM_MultiDimMaxFlow)->Arg(256)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();

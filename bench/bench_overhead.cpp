// Reproduces Fig. 13 (algorithm overhead), §V.D: the Aladdin+IL+DL policy
// swept over cluster sizes for the four container arrival characteristics.
//
//   Fig. 13(a) — total algorithm runtime vs machines for CHP / CLP / CLA /
//                CSA (paper: linear growth; ~15 min worst case (CSA) at 10k
//                machines / 100k containers; CLA ~30 % cheaper).
//   Fig. 13(b) — migration + preemption cost (paper: worst case ~1,700
//                migrations for CSA = ~1.7 % of containers; CHP lowest).
#include <cstdio>

#include "common/flags.h"
#include "obs/cli.h"
#include "common/strings.h"
#include "common/table.h"
#include "core/scheduler.h"
#include "sim/experiment.h"
#include "sim/report.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  auto& max_scale =
      flags.Double("scale", 0.04, "largest sweep point (1.0 = paper's 10k)");
  auto& steps = flags.Int64("steps", 4, "sweep points");
  auto& seed = flags.Int64("seed", 42, "trace seed");
  aladdin::obs::ObsCli obs_cli(flags);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  sim::PrintExperimentHeader(
      "Fig. 13(a)", "Aladdin+IL+DL total runtime (ms) vs cluster size per "
                    "arrival order");
  Table runtime({"machines", "containers", "CHP", "CLP", "CLA", "CSA"});
  sim::PrintExperimentHeader(
      "Fig. 13(b)", "migrations + preemptions vs cluster size per arrival "
                    "order (printed after the runtime table)");
  Table cost({"machines", "containers", "CHP migr+pre", "CLP migr+pre",
              "CLA migr+pre", "CSA migr+pre", "worst-case % of containers"});

  for (std::int64_t step = 1; step <= steps; ++step) {
    // Sweep from 0.4x to 1x of --scale: points below ~0.016 produce
    // degenerate replicas (giant apps comparable to the machine count).
    const double lo = 0.4;
    const double scale =
        max_scale * (lo + (1.0 - lo) * static_cast<double>(step) /
                              static_cast<double>(steps));
    const trace::Workload workload =
        sim::MakeBenchWorkload(scale, static_cast<std::uint64_t>(seed));
    sim::ExperimentConfig config;
    config.machines = sim::BenchMachineCount(scale);

    runtime.Cell(static_cast<std::int64_t>(config.machines))
        .Cell(static_cast<std::int64_t>(workload.container_count()));
    cost.Cell(static_cast<std::int64_t>(config.machines))
        .Cell(static_cast<std::int64_t>(workload.container_count()));

    std::int64_t worst_cost = 0;
    for (trace::ArrivalOrder order : trace::kCharacteristicOrders) {
      config.order = order;
      core::AladdinScheduler aladdin;
      const sim::RunMetrics m =
          sim::RunExperiment(aladdin, workload, config);
      runtime.Cell(m.wall_seconds * 1e3, 1);
      const std::int64_t moves = m.migrations + m.preemptions;
      worst_cost = std::max(worst_cost, moves);
      cost.Cell(moves);
    }
    cost.Cell(100.0 * static_cast<double>(worst_cost) /
                  static_cast<double>(workload.container_count()),
              2);
    runtime.EndRow();
    cost.EndRow();
  }
  runtime.Print();
  cost.Print();
  std::printf(
      "paper: runtime grows linearly with cluster size; CSA is the worst "
      "case and CLA ~30%% cheaper; migrations stay below ~1.7%% of "
      "containers.\n");
  if (!obs_cli.Finish()) return 1;
  return 0;
}

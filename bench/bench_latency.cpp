// Reproduces Fig. 12 (average placement latency vs cluster size), §V.D.
//
// Eq. 11: latency = total scheduling time / containers. The sweep grows the
// cluster (and the workload proportionally, keeping the paper's 10
// containers-per-machine ratio) and measures every scheduler plus the three
// Aladdin policies:
//   Aladdin          — max-flow search without optimisations,
//   Aladdin+IL       — with isomorphism limiting,
//   Aladdin+IL+DL    — with both (production mode).
//
// Paper shape targets: Firmament-QUINCY cheapest and flat (~50 ms);
// Aladdin's policies in the hundreds of ms with IL+DL cutting the plain
// policy's latency by ~50 %; Go-Kube and Medea growing past 1 s with
// cluster size. Absolute values here are single-core simulation
// microseconds — the ordering and the growth trends are the reproduction.
#include <cstdio>
#include <vector>

#include "baselines/firmament/scheduler.h"
#include "baselines/gokube/scheduler.h"
#include "baselines/medea/scheduler.h"
#include "common/flags.h"
#include "obs/cli.h"
#include "common/table.h"
#include "core/scheduler.h"
#include "sim/experiment.h"
#include "sim/report.h"

using namespace aladdin;

int main(int argc, char** argv) {
  Flags flags;
  auto& max_scale =
      flags.Double("scale", 0.04, "largest sweep point (1.0 = paper's 10k)");
  auto& steps = flags.Int64("steps", 5, "sweep points");
  auto& seed = flags.Int64("seed", 42, "trace seed");
  auto& headroom = flags.Double(
      "headroom", 1.15,
      "extra machines so repair churn does not mask the search cost");
  aladdin::obs::ObsCli obs_cli(flags);
  if (!flags.Parse(argc, argv)) return 1;
  if (!obs_cli.Apply()) return 1;

  sim::PrintExperimentHeader(
      "Fig. 12",
      "average placement latency (ms/container, Eq. 11) vs cluster size");

  Table table({"machines", "containers", "Go-Kube", "Firmament-QUINCY(8)",
               "Medea(1,1,0)", "Aladdin", "Aladdin+IL", "Aladdin+IL+DL"});

  for (std::int64_t step = 1; step <= steps; ++step) {
    // Sweep from 0.4x to 1x of --scale: points below ~0.016 produce
    // degenerate replicas (giant apps comparable to the machine count).
    const double lo = 0.4;
    const double scale =
        max_scale * (lo + (1.0 - lo) * static_cast<double>(step) /
                              static_cast<double>(steps));
    const trace::Workload workload =
        sim::MakeBenchWorkload(scale, static_cast<std::uint64_t>(seed));
    sim::ExperimentConfig config;
    config.machines = static_cast<std::size_t>(
        static_cast<double>(sim::BenchMachineCount(scale)) * headroom);
    config.order = trace::ArrivalOrder::kRandom;

    auto run = [&](sim::Scheduler& s) {
      return sim::RunExperiment(s, workload, config)
          .latency_ms_per_container;
    };

    baselines::GoKubeScheduler gokube;
    baselines::FirmamentOptions fo;
    fo.cost_model = baselines::FirmamentCostModel::kQuincy;
    fo.reschd = 8;
    baselines::FirmamentScheduler firmament(fo);
    baselines::MedeaOptions mo;
    mo.weights = {1.0, 1.0, 0.0};
    baselines::MedeaScheduler medea(mo);

    core::AladdinOptions plain;
    plain.enable_il = false;
    plain.enable_dl = false;
    core::AladdinScheduler aladdin_plain(plain);

    core::AladdinOptions il;
    il.enable_il = true;
    il.enable_dl = false;
    core::AladdinScheduler aladdin_il(il);

    core::AladdinScheduler aladdin_ildl;  // defaults: +IL +DL

    table.Cell(static_cast<std::int64_t>(config.machines))
        .Cell(static_cast<std::int64_t>(workload.container_count()))
        .Cell(run(gokube), 4)
        .Cell(run(firmament), 4)
        .Cell(run(medea), 4)
        .Cell(run(aladdin_plain), 4)
        .Cell(run(aladdin_il), 4)
        .Cell(run(aladdin_ildl), 4)
        .EndRow();
  }
  table.Print();
  std::printf(
      "paper: QUINCY flat ~50ms; Aladdin policies hundreds of ms with IL+DL "
      "~50%% below plain; Go-Kube/Medea exceed 1s as the cluster grows.\n");
  if (!obs_cli.Finish()) return 1;
  return 0;
}
